"""Discrete-time simulation: the streaming spine, scenarios, and results.

Execution is unified on one per-slot loop —
:func:`repro.simulation.simulate` — that drives any
:class:`OnlineController` over a :class:`SlotObservation` stream with
incremental cost accounting (:class:`CostAccumulator`), per-slot hooks,
checkpoint/resume, and a memory-bounded mode. See docs/ENGINE.md.
"""

# Import order matters: each module here builds only on the ones before it
# (observations -> accounting/hooks -> spine -> controllers -> engine ->
# cells), and nothing imports the baselines at module scope — the baselines
# build on this package.
from .observations import (
    OnlineController,
    SlotObservation,
    StatefulController,
    SystemDescription,
    iter_observations,
    observations_from_instance,
    single_slot_instance,
)
from .accounting import AccumulatorState, CostAccumulator, SlotCosts
from .hooks import (
    FeasibilityHook,
    ProgressHook,
    SlotHook,
    SolverStatsHook,
    WallTimeHook,
)
from .spine import (
    PerSlotController,
    RecomputeController,
    ScheduleController,
    SimulationCheckpoint,
    SimulationResult,
    SlotStepper,
    controller_for,
    run_on_spine,
    simulate,
)
from .controllers import RegularizedController
from .results import Comparison, RunResult, aggregate_ratios
from .scenario import Scenario
from .engine import compare_algorithms, run_algorithm
from .cells import SweepCell
from .batched import run_cells_batched
from .streaming import replay

__all__ = [
    "AccumulatorState",
    "Comparison",
    "CostAccumulator",
    "FeasibilityHook",
    "GreedyController",
    "OnlineController",
    "PerSlotController",
    "ProgressHook",
    "RecomputeController",
    "RegularizedController",
    "RunResult",
    "Scenario",
    "ScheduleController",
    "SimulationCheckpoint",
    "SimulationResult",
    "SlotCosts",
    "SlotHook",
    "SlotObservation",
    "SlotStepper",
    "SolverStatsHook",
    "StatefulController",
    "SweepCell",
    "SystemDescription",
    "WallTimeHook",
    "aggregate_ratios",
    "compare_algorithms",
    "controller_for",
    "iter_observations",
    "observations_from_instance",
    "replay",
    "run_algorithm",
    "run_cells_batched",
    "run_on_spine",
    "simulate",
    "single_slot_instance",
]


def __getattr__(name: str):
    """Lazily re-export :class:`GreedyController` (lives in the baselines
    layer, which builds on this package)."""
    if name == "GreedyController":
        from ..baselines.greedy import GreedyController

        return GreedyController
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
