"""Sweep cells: the self-contained unit of experiment-grid work.

A :class:`SweepCell` bundles everything one grid cell needs — scenario,
seed, algorithm roster — so a process pool can pickle it, execute it
anywhere, and return a :class:`Comparison`. It lives here (above the
engine, below the experiments layer) so that :mod:`repro.parallel` stays a
generic executor with no knowledge of simulations, and
:mod:`repro.simulation.engine` can use that executor without the deferred
import cycle the two modules used to need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from ..telemetry import get_registry
from .engine import compare_algorithms
from .results import Comparison
from .scenario import Scenario

if TYPE_CHECKING:  # the baselines build on this package; type-only import
    from ..baselines.base import AllocationAlgorithm


@dataclass(frozen=True)
class SweepCell:
    """One grid cell: run an algorithm roster on one seeded instance.

    Attributes:
        key: caller-chosen identifier (e.g. ``(case_index, repetition)``);
            round-trips unchanged into the executor's ``CellResult``.
        scenario: the experiment configuration to instantiate.
        algorithms: roster to compare (must include the baseline).
        seed: the seed for :meth:`Scenario.build` — the *only* source of
            randomness, which is what makes parallel runs deterministic.
        baseline: normalizer passed through to ``compare_algorithms``.
        keep_schedule: keep per-slot allocations in the results; ``False``
            accounts costs incrementally and drops them (ratio sweeps only
            need the totals, so big grids can run memory-bounded).
    """

    key: Any
    scenario: Scenario
    algorithms: "tuple[AllocationAlgorithm, ...]"
    seed: int
    baseline: str = "offline-opt"
    keep_schedule: bool = True

    def execute(self) -> Comparison:
        """Build the seeded instance and run the roster on it.

        Telemetry recorded inside the cell (slot events, solver counters)
        is tagged with the cell's ``key`` and ``seed`` so merged sweep
        manifests stay attributable per grid cell.
        """
        telemetry = get_registry()
        with telemetry.context(cell=self.key, seed=self.seed):
            return compare_algorithms(
                list(self.algorithms),
                self.scenario.build(seed=self.seed),
                baseline=self.baseline,
                keep_schedule=self.keep_schedule,
            )
