"""Per-slot hooks: pluggable observers of a streaming simulation.

The spine (:func:`repro.simulation.spine.simulate`) calls every hook around
each slot, so cross-cutting concerns — solver diagnostics, per-slot wall
time, feasibility residuals, progress reporting — plug in without touching
any controller or the spine itself. Subclass :class:`SlotHook` and override
only the phases you care about; all base methods are no-ops.
"""

from __future__ import annotations

import time
from typing import Callable

import numpy as np

from .accounting import SlotCosts
from .observations import OnlineController, SlotObservation, SystemDescription


class SlotHook:
    """Base class for per-slot observers; every method is an optional no-op."""

    def on_run_start(
        self, system: SystemDescription, controller: OnlineController
    ) -> None:
        """Called once before the first slot of a (possibly resumed) run."""

    def on_slot_start(self, observation: SlotObservation) -> None:
        """Called right before the controller observes a slot."""

    def on_slot_end(
        self, observation: SlotObservation, x_t: np.ndarray, costs: SlotCosts
    ) -> None:
        """Called after a slot's decision has been made and accounted."""

    def on_run_end(self, slots: int) -> None:
        """Called once after the last processed slot with the slot count."""


class WallTimeHook(SlotHook):
    """Record wall-clock seconds spent inside each slot's decision."""

    def __init__(self) -> None:
        """Start with an empty per-slot timing record."""
        self.per_slot_s: list[float] = []
        self._start = 0.0

    def on_slot_start(self, observation: SlotObservation) -> None:
        """Stamp the slot's start time."""
        self._start = time.perf_counter()

    def on_slot_end(
        self, observation: SlotObservation, x_t: np.ndarray, costs: SlotCosts
    ) -> None:
        """Append the elapsed wall time of the finished slot."""
        self.per_slot_s.append(time.perf_counter() - self._start)

    @property
    def total_s(self) -> float:
        """Summed per-slot wall time."""
        return float(sum(self.per_slot_s))


class SolverStatsHook(SlotHook):
    """Collect per-slot solver iteration counts from the controller.

    Works with any controller exposing a ``last_result`` attribute carrying
    a :class:`repro.solvers.base.SolverResult` (the regularized controller
    does); slots without one are recorded as 0 iterations.
    """

    def __init__(self) -> None:
        """Start with an empty iteration record."""
        self.iterations: list[int] = []
        self._controller: OnlineController | None = None

    def on_run_start(
        self, system: SystemDescription, controller: OnlineController
    ) -> None:
        """Remember which controller to poll for solver results."""
        self._controller = controller

    def on_slot_end(
        self, observation: SlotObservation, x_t: np.ndarray, costs: SlotCosts
    ) -> None:
        """Record the iterations of the solve that produced this slot."""
        result = getattr(self._controller, "last_result", None)
        self.iterations.append(int(getattr(result, "iterations", 0) or 0))

    @property
    def total_iterations(self) -> int:
        """Summed solver iterations across the recorded slots."""
        return int(sum(self.iterations))


class FeasibilityHook(SlotHook):
    """Track per-slot constraint residuals of the emitted decisions.

    Residuals follow the P0 constraint families: demand shortfall
    ``max_j (lambda_j - X_j)``, capacity excess ``max_i (X_i - C_i)`` and
    negativity ``max_ij (-x_ij)`` — each clipped at zero, one triple per
    slot.
    """

    def __init__(self) -> None:
        """Start with empty residual records."""
        self.demand: list[float] = []
        self.capacity: list[float] = []
        self.negativity: list[float] = []
        self._system: SystemDescription | None = None

    def on_run_start(
        self, system: SystemDescription, controller: OnlineController
    ) -> None:
        """Remember the constraint data (workloads, capacities)."""
        self._system = system

    def on_slot_end(
        self, observation: SlotObservation, x_t: np.ndarray, costs: SlotCosts
    ) -> None:
        """Record this slot's worst violation per constraint family."""
        assert self._system is not None
        x = np.asarray(x_t, dtype=float)
        workloads = np.asarray(self._system.workloads, dtype=float)
        capacities = np.asarray(self._system.capacities, dtype=float)
        self.demand.append(max(0.0, float((workloads - x.sum(axis=0)).max())))
        self.capacity.append(max(0.0, float((x.sum(axis=1) - capacities).max())))
        self.negativity.append(max(0.0, float((-x).max())))

    def worst(self) -> float:
        """The largest recorded violation across all families and slots."""
        candidates = self.demand + self.capacity + self.negativity
        return max(candidates) if candidates else 0.0


class ProgressHook(SlotHook):
    """Invoke ``callback(slots_done, slot_costs)`` every ``every`` slots.

    The intended use is progress bars and live dashboards on long runs;
    the callback must not mutate ``costs``.
    """

    def __init__(
        self, callback: Callable[[int, SlotCosts], None], *, every: int = 1
    ) -> None:
        """Wire the callback; ``every`` throttles how often it fires."""
        if every < 1:
            raise ValueError("every must be at least 1")
        self.callback = callback
        self.every = every
        self._done = 0

    def on_slot_end(
        self, observation: SlotObservation, x_t: np.ndarray, costs: SlotCosts
    ) -> None:
        """Count the slot and fire the callback on schedule."""
        self._done += 1
        if self._done % self.every == 0:
            self.callback(self._done, costs)
