"""Scenario builders: compose topology + mobility + workload + prices into a
:class:`ProblemInstance` exactly the way Section V-A does.

A :class:`Scenario` is the reproducible description of one experiment
configuration; :meth:`Scenario.build` consumes a seed and produces the
concrete instance (workloads, traces, prices are all drawn from one
``numpy`` generator so a scenario + seed pair is fully deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..core.problem import CostWeights, ProblemInstance
from ..mobility.base import MobilityModel
from ..mobility.taxi import TaxiMobility
from ..pricing.bandwidth import isp_migration_prices
from ..pricing.capacity import DEFAULT_OVERPROVISION, provision_capacities
from ..pricing.operation import gaussian_operation_prices
from ..pricing.reconfiguration import gaussian_reconfiguration_prices
from ..topology.delays import inter_cloud_delay_matrix
from ..topology.metro import Topology, rome_metro_topology
from ..workload.distributions import make_workloads


@dataclass(frozen=True)
class Scenario:
    """A reproducible experiment configuration (paper Section V-A defaults).

    Attributes:
        topology: edge-cloud deployment (default: 15 Rome metro stations).
        mobility: mobility model (default: synthetic Rome taxi traces).
        num_users: J.
        num_slots: T (paper: 60 one-minute slots per test case).
        workload_distribution: "power" | "uniform" | "normal".
        weights: static/dynamic cost weights (mu sweep of Figure 4).
        overprovision: total capacity / total workload (paper: 1.25).
        op_reference_price: capacity-weighted mean operation price.
        reconfig_mean, reconfig_std: truncated-Gaussian reconfiguration prices.
        migration_reference_price: mean combined migration price b_i.
        delay_price_per_km: converts km to service-quality cost units.
    """

    topology: Topology = field(default_factory=rome_metro_topology)
    mobility: MobilityModel | None = None
    num_users: int = 50
    num_slots: int = 30
    workload_distribution: str = "power"
    weights: CostWeights = field(default_factory=CostWeights)
    overprovision: float = DEFAULT_OVERPROVISION
    op_reference_price: float = 0.3
    reconfig_mean: float = 1.0
    reconfig_std: float = 0.5
    migration_reference_price: float = 1.0
    delay_price_per_km: float = 2.0

    def resolve_mobility(self) -> MobilityModel:
        """The configured mobility model, defaulting to taxi traces."""
        if self.mobility is not None:
            return self.mobility
        return TaxiMobility(self.topology, price_per_km=self.delay_price_per_km)

    def build(self, seed: int) -> ProblemInstance:
        """Draw a concrete problem instance for this scenario."""
        rng = np.random.default_rng(seed)
        num_clouds = self.topology.num_sites
        workloads = make_workloads(self.workload_distribution, self.num_users, rng)
        trace = self.resolve_mobility().generate(self.num_users, self.num_slots, rng)
        if trace.num_clouds != num_clouds:
            raise ValueError(
                "mobility model and topology disagree on the number of clouds"
            )
        capacities = provision_capacities(
            workloads, trace.attachment, num_clouds, overprovision=self.overprovision
        )
        op_prices = gaussian_operation_prices(
            capacities, self.num_slots, rng, reference_price=self.op_reference_price
        )
        reconfig_prices = gaussian_reconfiguration_prices(
            num_clouds, rng, mean=self.reconfig_mean, std=self.reconfig_std
        )
        migration_prices = isp_migration_prices(
            num_clouds, rng=rng, reference_price=self.migration_reference_price
        )
        delay = inter_cloud_delay_matrix(
            self.topology, price_per_km=self.delay_price_per_km
        )
        return ProblemInstance(
            workloads=workloads.astype(float),
            capacities=capacities,
            op_prices=op_prices,
            reconfig_prices=reconfig_prices,
            migration_prices=migration_prices,
            inter_cloud_delay=delay,
            attachment=trace.attachment,
            access_delay=trace.access_delay,
            weights=self.weights,
        )

    def with_mu(self, mu: float) -> "Scenario":
        """The same scenario with dynamic/static weight ratio ``mu``."""
        return replace(self, weights=CostWeights.from_mu(mu))

    def with_users(self, num_users: int) -> "Scenario":
        """The same scenario with a different number of users."""
        return replace(self, num_users=num_users)
