"""Result containers: per-run cost accounting and cross-algorithm comparison.

The central metric is the paper's **empirical competitive ratio**: every
algorithm's P0 objective normalized by offline-opt's (Figures 2, 3, 4, 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.allocation import AllocationSchedule, FeasibilityReport
from ..core.costs import CostBreakdown


@dataclass(frozen=True)
class RunResult:
    """One algorithm's outcome on one problem instance.

    Attributes:
        algorithm: the algorithm's name (e.g. "online-approx").
        schedule: the produced allocation trajectory, or ``None`` for
            memory-bounded runs (``keep_schedule=False``) where costs were
            accounted incrementally and the trajectory was dropped.
        breakdown: per-slot cost breakdown (includes access-delay constant).
        feasibility: worst constraint violations of the schedule.
        wall_time_s: wall-clock seconds the run took.
    """

    algorithm: str
    schedule: AllocationSchedule | None = field(repr=False)
    breakdown: CostBreakdown = field(repr=False)
    feasibility: FeasibilityReport
    wall_time_s: float

    @property
    def total_cost(self) -> float:
        """The P0 objective (weighted total over the horizon)."""
        return self.breakdown.total

    def summary(self) -> dict[str, float]:
        """Flat dict of cost components, total, and runtime."""
        data = self.breakdown.totals()
        data["wall_time_s"] = self.wall_time_s
        return data


@dataclass(frozen=True)
class Comparison:
    """Results of several algorithms on the same instance.

    ``baseline`` names the normalizer (offline-opt in the paper); ratios are
    total cost divided by the baseline's total cost.
    """

    results: dict[str, RunResult]
    baseline: str = "offline-opt"

    def __post_init__(self) -> None:
        if self.baseline not in self.results:
            raise ValueError(
                f"baseline {self.baseline!r} missing from results "
                f"({sorted(self.results)})"
            )

    @property
    def baseline_cost(self) -> float:
        return self.results[self.baseline].total_cost

    def ratio(self, algorithm: str) -> float:
        """Empirical competitive ratio of ``algorithm`` vs the baseline."""
        return self.results[algorithm].total_cost / self.baseline_cost

    def ratios(self) -> dict[str, float]:
        """All empirical competitive ratios, sorted by value."""
        pairs = {name: self.ratio(name) for name in self.results}
        return dict(sorted(pairs.items(), key=lambda kv: kv[1]))

    def improvement_over(self, algorithm: str, reference: str) -> float:
        """Relative cost reduction of ``algorithm`` vs ``reference``.

        E.g. the paper's "outperforms the online greedy one-shot
        optimizations by up to 70%" is
        ``improvement_over("online-approx", "online-greedy")``.
        """
        ref = self.results[reference].total_cost
        alg = self.results[algorithm].total_cost
        return (ref - alg) / ref


def aggregate_ratios(comparisons: list[Comparison]) -> dict[str, tuple[float, float]]:
    """Mean and standard deviation of each algorithm's ratio across repetitions.

    Matches the paper's reporting ("the plots show the mean values as well
    as the standard deviations" over five repetitions).
    """
    if not comparisons:
        return {}
    names = sorted(comparisons[0].results)
    stats: dict[str, tuple[float, float]] = {}
    for name in names:
        values = np.array([c.ratio(name) for c in comparisons])
        stats[name] = (float(values.mean()), float(values.std()))
    return stats
