"""Observation stream: what an online controller is allowed to see.

The batch engine hands algorithms the whole :class:`ProblemInstance`, which
is convenient but lets a buggy "online" algorithm peek at the future. This
module enforces online-ness structurally: a :class:`SlotObservation` carries
exactly what the operator observes at the *start* of slot t — the current
operation prices, user attachments and access delays — plus the
time-invariant :class:`SystemDescription` known upfront. A controller maps
observations to allocations; :func:`repro.simulation.spine.simulate` drives
a controller over an observation stream.

This module is a dependency leaf (it imports only the core problem model)
so that both the algorithm layer (:mod:`repro.baselines`,
:mod:`repro.core.regularization`) and the execution layer
(:mod:`repro.simulation.spine`) can build on it without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Protocol, runtime_checkable

import numpy as np

from ..core.problem import CostWeights, ProblemInstance
from ..pricing.bandwidth import MigrationPrices


@dataclass(frozen=True)
class SystemDescription:
    """The time-invariant part of the system, known to the operator upfront."""

    workloads: np.ndarray
    capacities: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: MigrationPrices
    inter_cloud_delay: np.ndarray
    weights: CostWeights = field(default_factory=CostWeights)

    @classmethod
    def from_instance(cls, instance: ProblemInstance) -> "SystemDescription":
        """Extract the time-invariant description of a problem instance."""
        return cls(
            workloads=np.asarray(instance.workloads, dtype=float),
            capacities=np.asarray(instance.capacities, dtype=float),
            reconfig_prices=np.asarray(instance.reconfig_prices, dtype=float),
            migration_prices=instance.migration_prices,
            inter_cloud_delay=np.asarray(instance.inter_cloud_delay, dtype=float),
            weights=instance.weights,
        )

    @property
    def num_clouds(self) -> int:
        """I — the number of edge clouds."""
        return int(np.asarray(self.capacities).size)

    @property
    def num_users(self) -> int:
        """J — the number of users."""
        return int(np.asarray(self.workloads).size)

    def zero_allocation(self) -> np.ndarray:
        """The paper's all-zero slot-0 baseline x_{i,j,0} = 0, shape (I, J)."""
        return np.zeros((self.num_clouds, self.num_users))


@dataclass(frozen=True)
class SlotObservation:
    """What the operator sees at the start of one time slot.

    Attributes:
        slot: the slot index t (informational).
        op_prices: (I,) operation prices a_{i,t} for this slot.
        attachment: (J,) current user attachments l_{j,t}.
        access_delay: (J,) current access delays d(j, l_{j,t}).
    """

    slot: int
    op_prices: np.ndarray
    attachment: np.ndarray
    access_delay: np.ndarray

    def __post_init__(self) -> None:
        if np.asarray(self.op_prices).ndim != 1:
            raise ValueError("op_prices must be a (I,) vector")
        if np.asarray(self.attachment).shape != np.asarray(self.access_delay).shape:
            raise ValueError("attachment and access_delay must be index-aligned")


@runtime_checkable
class OnlineController(Protocol):
    """A causal controller: observation in, allocation out, state inside."""

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Decide the (I, J) allocation for the observed slot."""
        ...

    def reset(self) -> None:
        """Forget all state (start a new run)."""
        ...


@runtime_checkable
class StatefulController(Protocol):
    """A controller whose internal state can be checkpointed and restored.

    Every controller shipped with this project implements it; the spine
    uses it for :class:`repro.simulation.spine.SimulationCheckpoint`.
    """

    def get_state(self) -> object:
        """A picklable snapshot of the controller's internal state."""
        ...

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        ...


def single_slot_instance(
    system: SystemDescription, observation: SlotObservation
) -> ProblemInstance:
    """Wrap one observation as a one-slot :class:`ProblemInstance`.

    The per-slot arrays are the observation's arrays with a length-one time
    axis prepended, so any slot-indexed computation on the wrapped instance
    (static prices, subproblem construction, per-slot LPs) produces
    bit-identical numbers to the same computation on the full instance at
    the observed slot.
    """
    return ProblemInstance(
        workloads=system.workloads,
        capacities=system.capacities,
        op_prices=np.asarray(observation.op_prices, dtype=float)[None, :],
        reconfig_prices=system.reconfig_prices,
        migration_prices=system.migration_prices,
        inter_cloud_delay=system.inter_cloud_delay,
        attachment=np.asarray(observation.attachment)[None, :],
        access_delay=np.asarray(observation.access_delay, dtype=float)[None, :],
        weights=system.weights,
    )


def iter_observations(instance: ProblemInstance) -> Iterator[SlotObservation]:
    """Lazily yield an instance's per-slot observation stream.

    Unlike :func:`observations_from_instance` this never materializes the
    whole list, which matters for the memory-bounded execution mode
    (``simulate(..., keep_schedule=False)``) on very long horizons.
    """
    op_prices = np.asarray(instance.op_prices, dtype=float)
    attachment = np.asarray(instance.attachment)
    access_delay = np.asarray(instance.access_delay, dtype=float)
    for t in range(instance.num_slots):
        yield SlotObservation(
            slot=t,
            op_prices=op_prices[t],
            attachment=attachment[t],
            access_delay=access_delay[t],
        )


def observations_from_instance(instance: ProblemInstance) -> list[SlotObservation]:
    """Decompose an instance into its per-slot observation stream."""
    return list(iter_observations(instance))
