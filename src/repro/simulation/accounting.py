"""Incremental cost accounting: the four paper costs, slot by slot.

:mod:`repro.core.costs` scores a *finished* schedule — it needs the whole
(T, I, J) array in memory. The :class:`CostAccumulator` here computes the
same four cost families (eqs. 1-3, 5) online from ``(x_t, x_{t-1})`` as the
spine emits decisions, so cost accounting works on horizons whose full
schedule is never materialized. The accumulated per-slot arrays assemble
into the exact same :class:`CostBreakdown`; equality with
:func:`repro.core.costs.cost_breakdown` to 1e-9 is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.costs import CostBreakdown, positive_part
from ..telemetry import get_registry
from .observations import SlotObservation, SystemDescription


@dataclass(frozen=True)
class SlotCosts:
    """Unweighted costs of one slot, plus the weighted P0 contribution."""

    slot: int
    operation: float
    service_quality: float
    reconfiguration: float
    migration: float
    total: float


@dataclass(frozen=True)
class AccumulatorState:
    """Picklable snapshot of a :class:`CostAccumulator` (checkpoint/resume)."""

    operation: tuple[float, ...]
    service_quality: tuple[float, ...]
    reconfiguration: tuple[float, ...]
    migration: tuple[float, ...]
    x_prev: np.ndarray


class CostAccumulator:
    """Accumulate the P0 cost of an allocation trajectory one slot at a time.

    Feed every emitted decision through :meth:`update`; read the totals at
    any point via :meth:`breakdown` / :meth:`totals`. The previous slot's
    allocation is the only (I, J) state kept, so memory is O(T) scalars +
    O(I·J) — independent of the horizon length times user count product
    that a full schedule costs.

    The slot-0 dynamic costs are charged against the paper's all-zero
    baseline x_{i,j,0} = 0, exactly as in :mod:`repro.core.costs`.
    """

    def __init__(self, system: SystemDescription) -> None:
        """Start accounting a fresh trajectory for ``system``."""
        self.system = system
        self._operation: list[float] = []
        self._service_quality: list[float] = []
        self._reconfiguration: list[float] = []
        self._migration: list[float] = []
        self._x_prev = system.zero_allocation()

    @property
    def num_slots(self) -> int:
        """Number of slots accounted so far."""
        return len(self._operation)

    def update(self, observation: SlotObservation, x_t: np.ndarray) -> SlotCosts:
        """Account one slot's decision; returns that slot's cost record.

        Args:
            observation: the slot's observation (prices, attachments).
            x_t: the (I, J) allocation decided for the slot.
        """
        system = self.system
        x_t = np.asarray(x_t, dtype=float)
        x_prev = self._x_prev
        workloads = np.asarray(system.workloads, dtype=float)

        cloud_totals = x_t.sum(axis=1)
        prev_totals = x_prev.sum(axis=1)

        # Cost_op (eq. 1): Sum_i a_{i,t} Sum_j x_{i,j,t}.
        operation = float(
            np.asarray(observation.op_prices, dtype=float) @ cloud_totals
        )
        # Cost_sq (eq. 3): access delay + workload-normalized inter-cloud delay.
        d_att = np.asarray(system.inter_cloud_delay, dtype=float)[
            :, np.asarray(observation.attachment)
        ]  # (I, J): d(l_{j,t}, i)
        service_quality = float(
            np.asarray(observation.access_delay, dtype=float).sum()
            + np.sum(x_t * (d_att / workloads[None, :]))
        )
        # Cost_rc (eq. 2): c_i (X_{i,t} - X_{i,t-1})+.
        reconfiguration = float(
            positive_part(cloud_totals - prev_totals)
            @ np.asarray(system.reconfig_prices, dtype=float)
        )
        # Cost_mg (eq. 5): b_i^out z_out + b_i^in z_in with the eq. 4 volumes.
        z_out = positive_part(x_prev - x_t).sum(axis=1)
        z_in = positive_part(x_t - x_prev).sum(axis=1)
        migration = float(
            z_out @ np.asarray(system.migration_prices.out, dtype=float)
            + z_in @ np.asarray(system.migration_prices.into, dtype=float)
        )

        self._operation.append(operation)
        self._service_quality.append(service_quality)
        self._reconfiguration.append(reconfiguration)
        self._migration.append(migration)
        self._x_prev = x_t

        weights = system.weights
        total = weights.static * (operation + service_quality) + weights.dynamic * (
            reconfiguration + migration
        )
        telemetry = get_registry()
        if telemetry.enabled:
            telemetry.counter("accounting.slots").inc()
            telemetry.counter("accounting.cost.op").inc(operation)
            telemetry.counter("accounting.cost.sq").inc(service_quality)
            telemetry.counter("accounting.cost.rc").inc(reconfiguration)
            telemetry.counter("accounting.cost.mg").inc(migration)
            telemetry.counter("accounting.cost.total").inc(total)
        return SlotCosts(
            slot=observation.slot,
            operation=operation,
            service_quality=service_quality,
            reconfiguration=reconfiguration,
            migration=migration,
            total=total,
        )

    def breakdown(self) -> CostBreakdown:
        """The accumulated per-slot costs as a standard :class:`CostBreakdown`."""
        if not self._operation:
            raise ValueError("no slots accounted yet")
        return CostBreakdown(
            operation=np.asarray(self._operation, dtype=float),
            service_quality=np.asarray(self._service_quality, dtype=float),
            reconfiguration=np.asarray(self._reconfiguration, dtype=float),
            migration=np.asarray(self._migration, dtype=float),
            weights=self.system.weights,
        )

    def totals(self) -> dict[str, float]:
        """Summed components plus the weighted total (see ``CostBreakdown.totals``)."""
        return self.breakdown().totals()

    @property
    def total(self) -> float:
        """The weighted P0 objective of everything accounted so far."""
        return self.breakdown().total

    # ----- checkpoint/resume --------------------------------------------------

    def get_state(self) -> AccumulatorState:
        """Snapshot the accumulated costs and the carried x_{t-1}."""
        return AccumulatorState(
            operation=tuple(self._operation),
            service_quality=tuple(self._service_quality),
            reconfiguration=tuple(self._reconfiguration),
            migration=tuple(self._migration),
            x_prev=self._x_prev.copy(),
        )

    def set_state(self, state: AccumulatorState) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._operation = list(state.operation)
        self._service_quality = list(state.service_quality)
        self._reconfiguration = list(state.reconfiguration)
        self._migration = list(state.migration)
        self._x_prev = np.asarray(state.x_prev, dtype=float).copy()
