"""User mobility models, traces, and trace statistics."""

from .attachment import nearest_cloud_attachment
from .base import MobilityModel, MobilityTrace
from .levy import LevyFlightMobility
from .markov import MarkovMobility, lazy_random_walk_matrix
from .random_walk import RandomWalkMobility
from .replay import ReplayMobility
from .stats import (
    TraceStats,
    dwell_lengths,
    mean_dwell,
    occupancy_distribution,
    occupancy_entropy,
    switch_rate,
    trace_stats,
)
from .taxi import TaxiMobility

__all__ = [
    "LevyFlightMobility",
    "MarkovMobility",
    "MobilityModel",
    "MobilityTrace",
    "RandomWalkMobility",
    "ReplayMobility",
    "TaxiMobility",
    "TraceStats",
    "dwell_lengths",
    "lazy_random_walk_matrix",
    "mean_dwell",
    "nearest_cloud_attachment",
    "occupancy_distribution",
    "occupancy_entropy",
    "switch_rate",
    "trace_stats",
]
