"""Levy-flight mobility.

Human-mobility studies (including analyses of exactly the kind of taxi
traces the paper replays) consistently report heavy-tailed displacement
lengths: many short hops, occasional long jumps. This model implements a
truncated-Pareto Levy flight over the deployment's bounding box — a
stress-test mobility pattern between the taxi model's smooth trips and the
random walk's relentless hopping, useful for robustness experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.metro import Topology
from .attachment import nearest_cloud_attachment
from .base import MobilityTrace

_KM_PER_DEG_LAT = 111.32


@dataclass(frozen=True)
class LevyFlightMobility:
    """Truncated-Pareto displacement lengths, uniform directions.

    Attributes:
        topology: deployment providing the bounding box and the clouds.
        alpha: Pareto tail index of the jump length (1 < alpha <= 3 is the
            empirically reported range; smaller = heavier tail).
        min_jump_km: minimum displacement per slot.
        max_jump_km: truncation of the jump length.
        pause_probability: chance of not moving in a slot.
        price_per_km: converts km to access-delay cost units.
    """

    topology: Topology
    alpha: float = 1.6
    min_jump_km: float = 0.05
    max_jump_km: float = 5.0
    pause_probability: float = 0.3
    price_per_km: float = 1.0

    def __post_init__(self) -> None:
        if self.alpha <= 1.0:
            raise ValueError("alpha must exceed 1")
        if not 0 < self.min_jump_km <= self.max_jump_km:
            raise ValueError("need 0 < min_jump_km <= max_jump_km")
        if not 0.0 <= self.pause_probability < 1.0:
            raise ValueError("pause_probability must be in [0, 1)")

    def _jump_lengths(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Truncated Pareto jump lengths in km (inverse-CDF sampling)."""
        u = rng.uniform(0.0, 1.0, size=n)
        a = self.alpha - 1.0
        lo, hi = self.min_jump_km, self.max_jump_km
        # CDF of Pareto(a) truncated to [lo, hi].
        norm = lo ** (-a) - hi ** (-a)
        return (lo ** (-a) - u * norm) ** (-1.0 / a)

    def generate(
        self, num_users: int, num_slots: int, rng: np.random.Generator
    ) -> MobilityTrace:
        """Per-slot positions and nearest-cloud attachments."""
        if num_users < 0 or num_slots < 0:
            raise ValueError("num_users and num_slots must be nonnegative")
        num_sites = self.topology.num_sites
        if num_slots == 0 or num_users == 0:
            empty = np.zeros((num_slots, num_users))
            return MobilityTrace(
                attachment=empty.astype(np.int64),
                access_delay=empty.astype(float),
                num_clouds=num_sites,
            )
        lat_min, lat_max, lon_min, lon_max = self.topology.bounding_box()
        km_per_deg_lon = _KM_PER_DEG_LAT * np.cos(
            np.radians(0.5 * (lat_min + lat_max))
        )
        positions = np.zeros((num_slots, num_users, 2))
        pos = np.stack(
            [
                rng.uniform(lat_min, lat_max, size=num_users),
                rng.uniform(lon_min, lon_max, size=num_users),
            ],
            axis=1,
        )
        for t in range(num_slots):
            positions[t] = pos
            moving = rng.uniform(size=num_users) >= self.pause_probability
            n_moving = int(moving.sum())
            if n_moving:
                lengths = self._jump_lengths(rng, n_moving)
                angles = rng.uniform(0.0, 2.0 * np.pi, size=n_moving)
                dlat = lengths * np.sin(angles) / _KM_PER_DEG_LAT
                dlon = lengths * np.cos(angles) / km_per_deg_lon
                pos = pos.copy()
                pos[moving, 0] += dlat
                pos[moving, 1] += dlon
                # Reflect at the bounding box so users stay in coverage.
                pos[:, 0] = _reflect(pos[:, 0], lat_min, lat_max)
                pos[:, 1] = _reflect(pos[:, 1], lon_min, lon_max)
        attachment, access_delay = nearest_cloud_attachment(
            positions, self.topology, price_per_km=self.price_per_km
        )
        return MobilityTrace(
            attachment=attachment,
            access_delay=access_delay,
            num_clouds=num_sites,
            positions=positions,
        )


def _reflect(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Reflect values into [low, high] (single bounce is enough here)."""
    span = high - low
    if span <= 0:
        return np.full_like(values, low)
    out = values.copy()
    over = out > high
    out[over] = high - np.minimum(out[over] - high, span)
    under = out < low
    out[under] = low + np.minimum(low - out[under], span)
    return np.clip(out, low, high)
