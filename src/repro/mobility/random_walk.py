"""Random-walk mobility on the station graph (paper Section V-D).

    "We assume each user starts from an arbitrary metro station equipped
    with an edge cloud and is traveling with the metro. In each time slot,
    each user determines its location for the next time slot by choosing
    randomly from the neighbor stations with an edge cloud equipped or just
    staying at the same metro station. Assume in a certain time slot the
    user is at a location with three neighbors so the probability of moving
    to any of the three neighbors, as well as of staying at the same
    location, in the next time slot, would be 25%."

Users sit exactly at stations, so the access delay d(j, l_{j,t}) is zero.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.metro import Topology
from .base import MobilityTrace


@dataclass(frozen=True)
class RandomWalkMobility:
    """Uniform random walk over a topology's adjacency graph.

    Attributes:
        topology: deployment whose graph the users walk on.
        stay_bias: extra probability mass (>= 0) added to "stay" relative to
            each neighbor; 0.0 reproduces the paper's uniform choice among
            {stay} + neighbors.
    """

    topology: Topology
    stay_bias: float = 0.0

    def __post_init__(self) -> None:
        if self.stay_bias < 0:
            raise ValueError("stay_bias must be nonnegative")

    def generate(
        self, num_users: int, num_slots: int, rng: np.random.Generator
    ) -> MobilityTrace:
        """Generate a (T, J) trace of station attachments."""
        if num_users < 0 or num_slots < 0:
            raise ValueError("num_users and num_slots must be nonnegative")
        num_sites = self.topology.num_sites
        neighbors = [self.topology.neighbors(s) for s in range(num_sites)]
        attachment = np.zeros((num_slots, num_users), dtype=np.int64)
        if num_slots == 0 or num_users == 0:
            return MobilityTrace(
                attachment=attachment,
                access_delay=np.zeros_like(attachment, dtype=float),
                num_clouds=num_sites,
            )
        attachment[0] = rng.integers(0, num_sites, size=num_users)
        # Precompute per-site choice lists: index 0 = stay, rest = neighbors.
        choices = [[s, *neighbors[s]] for s in range(num_sites)]
        weights = []
        for s in range(num_sites):
            w = np.ones(len(choices[s]), dtype=float)
            w[0] += self.stay_bias * len(neighbors[s])
            weights.append(w / w.sum())
        for t in range(1, num_slots):
            prev = attachment[t - 1]
            for j in range(num_users):
                site = int(prev[j])
                attachment[t, j] = rng.choice(choices[site], p=weights[site])
        return MobilityTrace(
            attachment=attachment,
            access_delay=np.zeros_like(attachment, dtype=float),
            num_clouds=num_sites,
        )
