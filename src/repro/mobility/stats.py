"""Mobility-trace statistics.

The paper characterizes its traces informally ("moderate mobility", "the
number of users ... is generally around 300"). These helpers make such
statements measurable, and the scenario docs/tests use them to verify that
the synthetic taxi traces really are "moderate" compared to the uniform
random walk.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import MobilityTrace


@dataclass(frozen=True)
class TraceStats:
    """Summary statistics of one mobility trace."""

    num_slots: int
    num_users: int
    num_clouds: int
    switch_rate: float
    mean_dwell: float
    occupancy_entropy: float
    max_occupancy_share: float

    def as_dict(self) -> dict[str, float]:
        """Flat dict form (for CSV/JSON reporting)."""
        return {
            "num_slots": self.num_slots,
            "num_users": self.num_users,
            "num_clouds": self.num_clouds,
            "switch_rate": self.switch_rate,
            "mean_dwell": self.mean_dwell,
            "occupancy_entropy": self.occupancy_entropy,
            "max_occupancy_share": self.max_occupancy_share,
        }


def switch_rate(trace: MobilityTrace) -> float:
    """Fraction of (user, slot-transition) pairs where attachment changed."""
    if trace.num_slots < 2 or trace.num_users == 0:
        return 0.0
    transitions = (trace.num_slots - 1) * trace.num_users
    return trace.switch_count() / transitions


def dwell_lengths(trace: MobilityTrace) -> np.ndarray:
    """Lengths of all maximal constant-attachment runs, across all users."""
    lengths: list[int] = []
    for j in range(trace.num_users):
        run = 1
        for t in range(1, trace.num_slots):
            if trace.attachment[t, j] == trace.attachment[t - 1, j]:
                run += 1
            else:
                lengths.append(run)
                run = 1
        if trace.num_slots:
            lengths.append(run)
    return np.asarray(lengths, dtype=int)


def mean_dwell(trace: MobilityTrace) -> float:
    """Average number of consecutive slots a user stays attached."""
    lengths = dwell_lengths(trace)
    return float(lengths.mean()) if lengths.size else 0.0


def occupancy_distribution(trace: MobilityTrace) -> np.ndarray:
    """Fraction of all (slot, user) attachments landing on each cloud."""
    counts = np.bincount(
        np.asarray(trace.attachment).ravel(), minlength=trace.num_clouds
    ).astype(float)
    total = counts.sum()
    return counts / total if total else counts


def occupancy_entropy(trace: MobilityTrace) -> float:
    """Shannon entropy (nats) of the occupancy distribution.

    ln(num_clouds) means perfectly even usage; 0 means one station takes
    all attachments.
    """
    p = occupancy_distribution(trace)
    p = p[p > 0]
    return float(-(p * np.log(p)).sum()) if p.size else 0.0


def trace_stats(trace: MobilityTrace) -> TraceStats:
    """All statistics bundled."""
    occupancy = occupancy_distribution(trace)
    return TraceStats(
        num_slots=trace.num_slots,
        num_users=trace.num_users,
        num_clouds=trace.num_clouds,
        switch_rate=switch_rate(trace),
        mean_dwell=mean_dwell(trace),
        occupancy_entropy=occupancy_entropy(trace),
        max_occupancy_share=float(occupancy.max()) if occupancy.size else 0.0,
    )
