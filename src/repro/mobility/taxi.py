"""Synthetic Rome-taxi mobility (substitute for the CRAWDAD roma/taxi traces).

The paper replays GPS trajectories of taxis in central Rome, attaches each
taxi to the nearest of the 15 metro-station edge clouds, and reports that
this yields "moderate mobility". The original dataset is not redistributable
and unavailable offline, so this module generates trajectories with the same
interface and qualitative statistics:

* taxis drive between *destinations* (waypoints) biased towards popular,
  well-connected stations — mirroring the hotspot structure of real taxi
  demand around Termini and the city center;
* movement is continuous at realistic urban speeds with Gaussian jitter, so
  a taxi's nearest station changes only occasionally (moderate mobility);
* arrival is followed by a dwell (passenger pickup/dropoff) of a few slots.

Positions are emitted per slot and attached via the same nearest-station
rule (Voronoi coverage) the paper uses. See DESIGN.md, "Substitutions".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..topology.metro import Topology
from .attachment import nearest_cloud_attachment
from .base import MobilityTrace

#: km per degree of latitude.
_KM_PER_DEG_LAT = 111.32


@dataclass(frozen=True)
class TaxiMobility:
    """Waypoint taxi mobility over a topology's bounding box.

    Attributes:
        topology: deployment whose stations serve as hotspots and clouds.
        speed_km_per_slot: mean driving speed per time slot (paper slots are
            one minute; 0.5 km/min = 30 km/h urban traffic).
        speed_jitter: multiplicative lognormal-ish jitter on per-trip speed.
        dwell_slots: (min, max) slots spent parked at a destination.
        position_noise_km: GPS-style per-slot Gaussian position noise.
        hotspot_zipf: skew of destination popularity across stations; larger
            values concentrate trips on the best-connected stations.
        price_per_km: scale converting km to access-delay cost units.
    """

    topology: Topology
    speed_km_per_slot: float = 0.5
    speed_jitter: float = 0.3
    dwell_slots: tuple[int, int] = (1, 4)
    position_noise_km: float = 0.05
    hotspot_zipf: float = 1.0
    price_per_km: float = 1.0

    def __post_init__(self) -> None:
        if self.speed_km_per_slot <= 0:
            raise ValueError("speed_km_per_slot must be positive")
        if not 0 <= self.speed_jitter < 1:
            raise ValueError("speed_jitter must be in [0, 1)")
        lo, hi = self.dwell_slots
        if lo < 0 or hi < lo:
            raise ValueError("dwell_slots must satisfy 0 <= min <= max")
        if self.position_noise_km < 0:
            raise ValueError("position_noise_km must be nonnegative")
        if self.hotspot_zipf < 0:
            raise ValueError("hotspot_zipf must be nonnegative")

    def station_popularity(self) -> np.ndarray:
        """Destination-choice weights per station.

        Popularity grows with graph degree (interchanges such as Termini are
        the busiest spots in the real data) and is skewed by ``hotspot_zipf``.
        """
        degrees = np.array(
            [self.topology.graph.degree(s) for s in range(self.topology.num_sites)],
            dtype=float,
        )
        weights = (degrees + 1.0) ** self.hotspot_zipf
        return weights / weights.sum()

    def generate(
        self, num_users: int, num_slots: int, rng: np.random.Generator
    ) -> MobilityTrace:
        """Generate per-slot positions and nearest-station attachments."""
        if num_users < 0 or num_slots < 0:
            raise ValueError("num_users and num_slots must be nonnegative")
        num_sites = self.topology.num_sites
        if num_slots == 0 or num_users == 0:
            empty = np.zeros((num_slots, num_users))
            return MobilityTrace(
                attachment=empty.astype(np.int64),
                access_delay=empty.astype(float),
                num_clouds=num_sites,
            )
        site_lat = np.array([p.lat for p in self.topology.points])
        site_lon = np.array([p.lon for p in self.topology.points])
        popularity = self.station_popularity()
        km_per_deg_lon = _KM_PER_DEG_LAT * np.cos(np.radians(site_lat.mean()))

        positions = np.zeros((num_slots, num_users, 2))
        # State per user: current position, destination, per-trip speed,
        # remaining dwell slots.
        start = rng.choice(num_sites, size=num_users, p=popularity)
        pos = np.stack([site_lat[start], site_lon[start]], axis=1)
        pos += self._noise(rng, num_users, km_per_deg_lon)
        dest = np.array([self._pick_destination(rng, popularity, s) for s in start])
        speed = self._trip_speed(rng, num_users)
        dwell = np.zeros(num_users, dtype=int)

        for t in range(num_slots):
            positions[t] = pos
            for j in range(num_users):
                if dwell[j] > 0:
                    dwell[j] -= 1
                    continue
                target = np.array([site_lat[dest[j]], site_lon[dest[j]]])
                delta = target - pos[j]
                dist_km = float(
                    np.hypot(delta[0] * _KM_PER_DEG_LAT, delta[1] * km_per_deg_lon)
                )
                step = speed[j]
                if dist_km <= step:
                    # Arrive, dwell, choose the next trip.
                    pos[j] = target
                    lo, hi = self.dwell_slots
                    dwell[j] = int(rng.integers(lo, hi + 1))
                    arrived_at = int(dest[j])
                    dest[j] = self._pick_destination(rng, popularity, arrived_at)
                    speed[j] = self._trip_speed(rng, 1)[0]
                else:
                    pos[j] = pos[j] + delta * (step / dist_km)
            pos = pos + self._noise(rng, num_users, km_per_deg_lon)

        attachment, access_delay = nearest_cloud_attachment(
            positions, self.topology, price_per_km=self.price_per_km
        )
        return MobilityTrace(
            attachment=attachment,
            access_delay=access_delay,
            num_clouds=num_sites,
            positions=positions,
        )

    def _pick_destination(
        self, rng: np.random.Generator, popularity: np.ndarray, current: int
    ) -> int:
        """Pick a destination station different from ``current``."""
        if popularity.size == 1:
            return current
        weights = popularity.copy()
        weights[current] = 0.0
        weights = weights / weights.sum()
        return int(rng.choice(popularity.size, p=weights))

    def _trip_speed(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Per-trip speed in km/slot with multiplicative jitter."""
        factor = 1.0 + self.speed_jitter * rng.uniform(-1.0, 1.0, size=n)
        return self.speed_km_per_slot * factor

    def _noise(
        self, rng: np.random.Generator, n: int, km_per_deg_lon: float
    ) -> np.ndarray:
        """Per-slot GPS noise expressed in degrees."""
        if self.position_noise_km == 0:
            return np.zeros((n, 2))
        noise_km = rng.normal(0.0, self.position_noise_km, size=(n, 2))
        noise = np.empty_like(noise_km)
        noise[:, 0] = noise_km[:, 0] / _KM_PER_DEG_LAT
        noise[:, 1] = noise_km[:, 1] / km_per_deg_lon
        return noise
