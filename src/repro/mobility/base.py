"""Mobility traces: the interface every mobility model produces.

A trace records, for each time slot t and user j, which edge cloud the user
is attached to (l_{j,t} in the paper) and the access delay d(j, l_{j,t})
between the user and that cloud. The paper makes *no assumption* on how
these sequences are produced ("the movement of each user is arbitrary"), so
the rest of the system only ever consumes this container.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np


@dataclass(frozen=True)
class MobilityTrace:
    """Per-slot attachment and access delay for every user.

    Attributes:
        attachment: (T, J) integer array; attachment[t, j] = l_{j,t}, the
            index of the cloud covering user j in slot t.
        access_delay: (T, J) float array; access_delay[t, j] = d(j, l_{j,t})
            in the same (priced) units as the inter-cloud delay matrix.
        num_clouds: number of clouds I the attachments index into.
        positions: optional (T, J, 2) array of raw (lat, lon) positions, kept
            for inspection/plotting; not used by the optimizer.
    """

    attachment: np.ndarray
    access_delay: np.ndarray
    num_clouds: int
    positions: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        attachment = np.asarray(self.attachment)
        delay = np.asarray(self.access_delay)
        if attachment.ndim != 2:
            raise ValueError("attachment must be a (T, J) array")
        if delay.shape != attachment.shape:
            raise ValueError(
                f"access_delay shape {delay.shape} != attachment shape {attachment.shape}"
            )
        if self.num_clouds <= 0:
            raise ValueError("num_clouds must be positive")
        if attachment.size:
            if not np.issubdtype(attachment.dtype, np.integer):
                raise ValueError("attachment must be an integer array")
            if attachment.min() < 0 or attachment.max() >= self.num_clouds:
                raise ValueError("attachment entries must be in [0, num_clouds)")
            if np.any(delay < 0) or not np.all(np.isfinite(delay)):
                raise ValueError("access delays must be finite and nonnegative")
        if self.positions is not None:
            positions = np.asarray(self.positions)
            if positions.shape != (*attachment.shape, 2):
                raise ValueError("positions must have shape (T, J, 2)")

    @property
    def num_slots(self) -> int:
        return int(self.attachment.shape[0])

    @property
    def num_users(self) -> int:
        return int(self.attachment.shape[1])

    def slice_slots(self, start: int, stop: int) -> "MobilityTrace":
        """A sub-trace covering slots [start, stop) (e.g., one test hour)."""
        if not 0 <= start <= stop <= self.num_slots:
            raise ValueError(f"invalid slot range [{start}, {stop})")
        positions = None if self.positions is None else self.positions[start:stop]
        return MobilityTrace(
            attachment=self.attachment[start:stop],
            access_delay=self.access_delay[start:stop],
            num_clouds=self.num_clouds,
            positions=positions,
        )

    def switch_count(self) -> int:
        """Total number of attachment changes across all users (mobility level)."""
        if self.num_slots < 2:
            return 0
        return int(np.sum(self.attachment[1:] != self.attachment[:-1]))


class MobilityModel(Protocol):
    """Anything that can generate a mobility trace."""

    def generate(self, num_users: int, num_slots: int, rng: np.random.Generator) -> MobilityTrace:
        """Produce a (T, J) trace for ``num_users`` users over ``num_slots``."""
        ...
