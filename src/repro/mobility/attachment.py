"""GPS positions -> edge-cloud attachment.

The paper assumes "each edge cloud is supposed to cover a small geographical
area and any area will only receive coverage from a single edge cloud"
(Section II-A) — i.e., a Voronoi partition: every position attaches to the
nearest edge cloud.
"""

from __future__ import annotations

import numpy as np

from ..topology.geo import haversine_km_vec
from ..topology.metro import Topology


def nearest_cloud_attachment(
    positions: np.ndarray,
    topology: Topology,
    *,
    price_per_km: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Attach every (lat, lon) position to its nearest edge cloud.

    Args:
        positions: array of shape (..., 2) of (lat, lon) pairs.
        topology: deployment whose sites are the candidate clouds.
        price_per_km: scale converting km to access-delay cost units, the
            same scale used for inter-cloud delays.

    Returns:
        (attachment, access_delay): integer array of shape ``(...)`` with the
        nearest site per position, and the priced distance to it.
    """
    positions = np.asarray(positions, dtype=float)
    if positions.shape[-1] != 2:
        raise ValueError("positions must end with a (lat, lon) axis of size 2")
    if price_per_km < 0:
        raise ValueError("price_per_km must be nonnegative")
    site_lats = np.array([p.lat for p in topology.points])
    site_lons = np.array([p.lon for p in topology.points])
    # Broadcast positions (..., 1) against sites (I,) -> distances (..., I).
    dists = haversine_km_vec(
        positions[..., 0:1], positions[..., 1:2], site_lats, site_lons
    )
    attachment = np.argmin(dists, axis=-1)
    access = np.take_along_axis(dists, attachment[..., None], axis=-1)[..., 0]
    return attachment.astype(np.int64), access * price_per_km
