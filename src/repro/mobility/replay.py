"""Replay a recorded mobility trace through the :class:`MobilityModel` API.

The serving loop (``repro-edge serve --trace`` / ``repro-edge loadgen
--trace``) feeds *recorded* traces — saved by :mod:`repro.io.traces` —
through the same :class:`repro.simulation.scenario.Scenario` pipeline
the synthetic models use, so capacities, prices, and workloads are
provisioned for the replayed trace exactly as they would be for a
generated one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import MobilityTrace


@dataclass(frozen=True)
class ReplayMobility:
    """A mobility "model" that returns one fixed, pre-recorded trace.

    Deterministic by construction: the generator argument is ignored.
    ``generate`` validates that the requested shape matches the recorded
    one, so a scenario misconfigured against its trace fails loudly
    instead of silently re-indexing users.
    """

    trace: MobilityTrace

    def generate(
        self, num_users: int, num_slots: int, rng: np.random.Generator
    ) -> MobilityTrace:
        """Return the recorded trace (shape-checked against the request)."""
        if num_users != self.trace.num_users:
            raise ValueError(
                f"replay trace has {self.trace.num_users} users, "
                f"scenario asked for {num_users}"
            )
        if num_slots != self.trace.num_slots:
            raise ValueError(
                f"replay trace has {self.trace.num_slots} slots, "
                f"scenario asked for {num_slots}"
            )
        return self.trace
