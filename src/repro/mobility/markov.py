"""Markov-chain mobility.

Prior work the paper compares against (Wang et al., Urgaonkar et al.)
*assumes* user movement follows a Markov chain; the paper's algorithm does
not need that assumption but must handle such traces too. This model lets
experiments exercise the algorithm on exactly that class of mobility, and
doubles as a generalization of the random walk (arbitrary transition
matrices instead of uniform neighbor choice).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .base import MobilityTrace


@dataclass(frozen=True)
class MarkovMobility:
    """Mobility driven by a user-independent Markov chain over clouds.

    Attributes:
        transition: (I, I) row-stochastic matrix; transition[a, b] is the
            probability a user attached to cloud a in slot t attaches to
            cloud b in slot t+1.
        initial: optional (I,) distribution over starting clouds; uniform
            when omitted.
    """

    transition: np.ndarray
    initial: np.ndarray | None = None

    def __post_init__(self) -> None:
        transition = np.asarray(self.transition, dtype=float)
        if transition.ndim != 2 or transition.shape[0] != transition.shape[1]:
            raise ValueError("transition must be a square matrix")
        if np.any(transition < 0):
            raise ValueError("transition probabilities must be nonnegative")
        if not np.allclose(transition.sum(axis=1), 1.0, atol=1e-9):
            raise ValueError("transition rows must sum to 1")
        if self.initial is not None:
            initial = np.asarray(self.initial, dtype=float)
            if initial.shape != (transition.shape[0],):
                raise ValueError("initial must have shape (I,)")
            if np.any(initial < 0) or not np.isclose(initial.sum(), 1.0, atol=1e-9):
                raise ValueError("initial must be a probability distribution")

    @property
    def num_clouds(self) -> int:
        return int(np.asarray(self.transition).shape[0])

    def generate(
        self, num_users: int, num_slots: int, rng: np.random.Generator
    ) -> MobilityTrace:
        """Sample a (T, J) attachment trace from the chain."""
        if num_users < 0 or num_slots < 0:
            raise ValueError("num_users and num_slots must be nonnegative")
        num_clouds = self.num_clouds
        attachment = np.zeros((num_slots, num_users), dtype=np.int64)
        if num_slots and num_users:
            initial = (
                np.full(num_clouds, 1.0 / num_clouds) if self.initial is None else self.initial
            )
            attachment[0] = rng.choice(num_clouds, size=num_users, p=initial)
            transition = np.asarray(self.transition, dtype=float)
            for t in range(1, num_slots):
                for j in range(num_users):
                    attachment[t, j] = rng.choice(
                        num_clouds, p=transition[attachment[t - 1, j]]
                    )
        return MobilityTrace(
            attachment=attachment,
            access_delay=np.zeros_like(attachment, dtype=float),
            num_clouds=num_clouds,
        )


def lazy_random_walk_matrix(adjacency: np.ndarray, stay_probability: float = 0.5) -> np.ndarray:
    """Row-stochastic lazy-walk matrix from a 0/1 adjacency matrix.

    With probability ``stay_probability`` the user stays; otherwise it moves
    to a uniformly random neighbor (or stays if isolated).
    """
    adjacency = np.asarray(adjacency, dtype=float)
    if adjacency.ndim != 2 or adjacency.shape[0] != adjacency.shape[1]:
        raise ValueError("adjacency must be square")
    if not 0.0 <= stay_probability <= 1.0:
        raise ValueError("stay_probability must be in [0, 1]")
    n = adjacency.shape[0]
    transition = np.zeros((n, n))
    for a in range(n):
        degree = adjacency[a].sum()
        if degree == 0:
            transition[a, a] = 1.0
            continue
        transition[a] = (1.0 - stay_probability) * adjacency[a] / degree
        transition[a, a] += stay_probability
    return transition
