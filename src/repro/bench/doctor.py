"""``repro-edge doctor``: a post-mortem report from a run manifest.

Renders what went wrong (or right) in a recorded run, without re-running
anything: the slowest slots, solver fallback and circuit-breaker firings,
optimality-certificate violations and the worst duality gaps, competitive-
ratio bound violations, and the interior-point convergence summary.

Works on torn manifests too — a crashed or killed run leaves no
``manifest_end`` line, so the doctor loads with
``read_manifest(path, strict=False)`` and flags the truncation instead of
refusing the patient.
"""

from __future__ import annotations

from pathlib import Path

from ..diagnostics import summarize_convergence
from ..diagnostics.certificates import DEFAULT_GAP_TOL
from ..telemetry import RunRecord, read_manifest

#: How many worst offenders each section lists.
TOP_N = 5


def resolve_manifest_path(path: str | Path) -> Path:
    """Resolve a manifest argument: a file as-is, a directory to its
    newest ``*.jsonl`` manifest (by modification time).

    Raises ``FileNotFoundError`` when a directory holds no ``*.jsonl``.
    """
    path = Path(path)
    if not path.is_dir():
        return path
    manifests = sorted(
        path.glob("*.jsonl"), key=lambda p: p.stat().st_mtime, reverse=True
    )
    if not manifests:
        raise FileNotFoundError(f"{path}: directory holds no *.jsonl manifest")
    return manifests[0]


def load_for_doctor(path: str | Path) -> RunRecord:
    """Load a manifest for post-mortem, tolerating truncation.

    ``path`` may be a directory: the newest ``*.jsonl`` inside it is
    picked (crashed runs rarely leave you remembering the exact file).
    """
    return read_manifest(resolve_manifest_path(path), strict=False)


def _fmt_config(config: dict) -> str:
    interesting = {
        key: value
        for key, value in config.items()
        if value is not None and key not in ("func",)
    }
    if not interesting:
        return "(none recorded)"
    return ", ".join(f"{key}={value}" for key, value in sorted(interesting.items()))


def _slowest_slots(record: RunRecord) -> list[str]:
    slots = [e for e in record.slot_events if "wall_ms" in e]
    if not slots:
        return ["  no per-slot timings recorded"]
    ranked = sorted(slots, key=lambda e: float(e["wall_ms"]), reverse=True)
    lines = []
    for event in ranked[:TOP_N]:
        lines.append(
            f"  slot {int(event.get('slot', -1)):4d}: "
            f"{float(event['wall_ms']):8.2f} ms  "
            f"(total cost {float(event.get('total', 0.0)):.3f})"
        )
    histogram = record.histograms.get("slot.wall_ms", {})
    if histogram.get("count"):
        lines.append(
            "  slot wall time: "
            f"p50={histogram.get('p50', 0.0) or 0.0:.2f} ms "
            f"p95={histogram.get('p95', 0.0) or 0.0:.2f} ms "
            f"p99={histogram.get('p99', 0.0) or 0.0:.2f} ms "
            f"over {int(histogram['count'])} slots"
        )
    return lines


def _solver_incidents(record: RunRecord) -> list[str]:
    fallbacks = record.events_of_type("solver.fallback")
    circuits = record.events_of_type("solver.circuit_open")
    if not fallbacks and not circuits:
        return ["  none - primary backend handled every solve"]
    lines = [f"  fallbacks: {len(fallbacks)}, circuit-breaker openings: {len(circuits)}"]
    for event in fallbacks[:TOP_N]:
        lines.append(
            f"  fallback from {event.get('primary', '?')}: "
            f"{event.get('error', '?')}"
        )
    for event in circuits[:TOP_N]:
        lines.append(
            f"  circuit opened on {event.get('primary', '?')} after "
            f"{event.get('failures', '?')} failures "
            f"(cooldown {event.get('cooldown', '?')})"
        )
    return lines


def _certificates(record: RunRecord, tol: float) -> list[str]:
    certificates = record.events_of_type("diag.certificate")
    if not certificates:
        return ["  no certificates recorded (run without certify)"]
    violations = [
        e for e in certificates if float(e.get("relative_gap", 0.0)) > tol
    ]
    worst = sorted(
        certificates,
        key=lambda e: float(e.get("relative_gap", 0.0)),
        reverse=True,
    )
    lines = [
        f"  {len(certificates)} certificates, "
        f"{len(violations)} above tol {tol:g}"
    ]
    for event in worst[:TOP_N]:
        gap = float(event.get("relative_gap", 0.0))
        marker = "VIOLATION" if gap > tol else "ok"
        lines.append(
            f"  slot {int(event.get('slot', -1)):4d}: rel gap {gap:.3e} "
            f"(kkt {float(event.get('kkt_residual', 0.0)):.3e}, "
            f"{event.get('source', '?')})  {marker}"
        )
    return lines


def _ratio(record: RunRecord) -> list[str]:
    traces = record.events_of_type("diag.ratio.trace")
    violations = record.events_of_type("diag.ratio.violation")
    if not traces and not violations:
        return ["  no ratio trace recorded"]
    lines = []
    for event in traces:
        lines.append(
            f"  bound {float(event.get('bound', 0.0)):.3f}, "
            f"final ratio {float(event.get('final_ratio', 0.0)):.3f}, "
            f"worst prefix {float(event.get('worst_ratio', 0.0)):.3f}, "
            f"certified: {event.get('certified')}"
        )
    for event in violations[:TOP_N]:
        lines.append(
            f"  VIOLATION at slot {int(event.get('slot', -1))}: "
            f"ratio {float(event.get('ratio', 0.0)):.3f} "
            f"> bound {float(event.get('bound', 0.0)):.3f}"
        )
    return lines


def _convergence(record: RunRecord) -> list[str]:
    summary = summarize_convergence(record)
    if not summary.solves:
        return ["  no interior-point traces recorded"]
    lines = [
        f"  {summary.solves} solves, "
        f"{summary.total_iterations} Newton iterations "
        f"(max {summary.max_iterations}, mean {summary.mean_iterations:.1f})",
        f"  terminal barrier mu <= {summary.max_final_mu:.3e}, "
        f"terminal decrement <= {summary.max_final_decrement:.3e}",
    ]
    if summary.non_decreasing_mu:
        lines.append(
            f"  WARNING: {summary.non_decreasing_mu} solve(s) with a "
            "non-decreasing barrier schedule"
        )
    return lines


def _aggregation(record: RunRecord) -> list[str]:
    slots = record.events_of_type("aggregate.slot")
    if not slots:
        return ["  not used (per-user solves)"]
    cohorts = [int(e.get("cohorts", 0)) for e in slots]
    reductions = [float(e.get("reduction", 1.0)) for e in slots]
    spreads = [float(e.get("spread", 0.0)) for e in slots]
    bounds = [float(e.get("bound", 0.0)) for e in slots]
    errors = [
        float(e["disagg_error"])
        for e in slots
        if e.get("disagg_error") is not None
    ]
    lines = [
        f"  {len(slots)} aggregated slots, cohorts "
        f"{min(cohorts)}..{max(cohorts)}, "
        f"mean reduction {sum(reductions) / len(reductions):.1f}x",
        f"  worst spread {max(spreads):.3f} "
        f"-> a-priori cost error bound {max(bounds):.3f}",
    ]
    if errors:
        worst = max(errors)
        # The a-priori bound covers within-bucket workload spread; cohort
        # membership churn can push the measured gap past it (see
        # docs/SCALING.md), so that state gets a note, not a VIOLATION.
        marker = "ok" if worst <= max(bounds) else "above bound (cohort churn)"
        lines.append(f"  worst measured disaggregation gap {worst:.3e}  {marker}")
    else:
        lines.append(
            "  disaggregation gap not evaluated (instance above "
            "ERROR_EVAL_LIMIT)"
        )
    return lines


def _service(record: RunRecord) -> list[str]:
    slots = int(record.counters.get("service.slots", 0))
    if not slots and not record.events_of_type("service.slot"):
        return ["  no service activity recorded"]
    rejected = int(record.counters.get("service.protocol.rejected", 0))
    superseded = int(record.counters.get("service.updates.superseded", 0))
    misses = int(record.counters.get("service.deadline.misses", 0))
    partial = int(record.counters.get("service.deadline.partial_solves", 0))
    lines = [
        f"  {slots} request(s) served, {rejected} rejected, "
        f"{superseded} superseded",
        f"  deadline misses: {misses} ({partial} budget-truncated solves)",
    ]
    histogram = record.histograms.get("service.slot_latency_ms", {})
    if histogram.get("count"):
        lines.append(
            "  slot latency: "
            f"p50={histogram.get('p50', 0.0) or 0.0:.2f} ms "
            f"p95={histogram.get('p95', 0.0) or 0.0:.2f} ms "
            f"p99={histogram.get('p99', 0.0) or 0.0:.2f} ms "
            f"over {int(histogram['count'])} request(s)"
        )
    for event in record.events_of_type("service.deadline.miss")[:TOP_N]:
        deadline = event.get("deadline_ms")
        budget = (
            "no deadline configured"
            if deadline is None
            else f"deadline {float(deadline):.1f} ms"
        )
        lines.append(
            f"  miss at slot {int(event.get('slot', -1)):4d}: "
            f"{float(event.get('latency_ms', 0.0)):8.2f} ms ({budget}"
            + (", partial solve)" if event.get("partial") else ")")
        )
    return lines


def _parallel(record: RunRecord) -> list[str]:
    cells = int(record.counters.get("sweep.cells", 0))
    if not cells:
        return ["  not used (no sweep dispatch recorded)"]
    workers = int(record.gauges.get("sweep.workers", 0) or 0)
    lines = [f"  {cells} cell(s) dispatched over {workers} worker(s)"]
    wall = record.histograms.get("sweep.cell_wall_s", {})
    if wall.get("count"):
        lines.append(
            "  cell wall time: "
            f"p50={(wall.get('p50', 0.0) or 0.0) * 1000.0:.2f} ms "
            f"p95={(wall.get('p95', 0.0) or 0.0) * 1000.0:.2f} ms"
        )
    fallbacks = int(record.counters.get("parallel.fallback.inline", 0))
    if fallbacks:
        lines.append(
            f"  WARNING: {fallbacks} fan-out(s) degraded to inline "
            "execution (results correct, requested speedup lost)"
        )
        for event in record.events_of_type("parallel.fallback.inline")[:TOP_N]:
            lines.append(
                f"    {event.get('cells', '?')} cell(s) at "
                f"{event.get('workers', '?')} worker(s): "
                f"{event.get('error', '?')}"
            )
    else:
        lines.append("  no inline fallbacks - the pool ran as requested")
    return lines


def _where_time_went(record: RunRecord) -> list[str]:
    events = record.events_of_type("prof.phases")
    if not events:
        return ["  no profile recorded (run with --profile)"]
    totals: dict[str, float] = {}
    wall_total = 0.0
    for event in events:
        wall_total += float(event.get("wall_ms", 0.0))
        for name, ms in (event.get("phases") or {}).items():
            totals[str(name)] = totals.get(str(name), 0.0) + float(ms)
    ranked = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))
    lines = [
        f"  {len(events)} profiled slot(s), {wall_total:.2f} ms attributed"
    ]
    for name, total_ms in ranked[:TOP_N + 3]:
        share = 0.0 if wall_total <= 0 else 100.0 * total_ms / wall_total
        lines.append(f"  {name:28s} {total_ms:10.2f} ms  ({share:5.1f}%)")
    slowest = sorted(
        events, key=lambda e: float(e.get("wall_ms", 0.0)), reverse=True
    )
    for event in slowest[:3]:
        phases = event.get("phases") or {}
        top = max(phases, key=phases.get) if phases else "?"
        lines.append(
            f"  slowest slot {int(event.get('slot', -1)):4d}: "
            f"{float(event.get('wall_ms', 0.0)):8.2f} ms "
            f"(mostly {top})"
        )
    return lines


def _fmt_environment(environment: dict) -> str:
    if not environment:
        return "(not recorded - pre-fingerprint manifest)"
    parts = [
        f"python {environment.get('python', '?')}",
        f"numpy {environment.get('numpy', '?')}",
    ]
    if environment.get("scipy"):
        parts.append(f"scipy {environment['scipy']}")
    parts.append(f"blas {environment.get('blas', '?')}")
    if environment.get("cpu_count") is not None:
        parts.append(f"{environment['cpu_count']} cpus")
    flags = environment.get("repro_flags") or {}
    if flags:
        parts.append(
            "flags " + ",".join(f"{k}={v}" for k, v in sorted(flags.items()))
        )
    return ", ".join(parts)


def _slo_incidents(record: RunRecord) -> list[str]:
    burns = record.events_of_type("slo.burn")
    incidents = record.events_of_type("incident.written")
    suppressed = int(record.counters.get("watchdog.suppressed", 0))
    snapshots = int(record.counters.get("flight.snapshots", 0))
    if not burns and not incidents and not snapshots:
        lines = ["  no SLO plane or flight recorder active this run"]
        if suppressed:
            lines.append(f"  watchdog alerts suppressed by cooldown: {suppressed}")
        return lines
    lines = []
    firing: dict[str, dict] = {}
    for event in burns:
        name = str(event.get("objective", "?"))
        if event.get("state") == "firing":
            firing[name] = event
        else:
            firing.pop(name, None)
    resolved = sum(1 for e in burns if e.get("state") == "resolved")
    lines.append(
        f"  slo.burn transitions: {len(burns)} "
        f"({len(firing)} still firing, {resolved} resolved)"
    )
    for name, event in sorted(firing.items()):
        lines.append(
            f"  FIRING [{name}] fast {float(event.get('fast_burn', 0.0)):.1f}x / "
            f"slow {float(event.get('slow_burn', 0.0)):.1f}x of budget "
            f"{float(event.get('budget', 0.0)):g}"
        )
    for name, rates in sorted(_burn_gauges(record).items()):
        lines.append(
            f"  burn [{name}] fast {rates.get('fast', 0.0):.2f}x / "
            f"slow {rates.get('slow', 0.0):.2f}x"
        )
    if snapshots:
        lines.append(f"  flight snapshots captured: {snapshots}")
    if incidents:
        lines.append(f"  incident bundles written: {len(incidents)}")
        for event in incidents[:TOP_N]:
            rule = event.get("rule") or event.get("reason", "?")
            lines.append(f"    [{rule}] {event.get('path', '?')}")
        lines.append(
            "    replay with: repro-edge incident replay BUNDLE"
        )
    if suppressed:
        lines.append(f"  watchdog alerts suppressed by cooldown: {suppressed}")
    return lines


def _burn_gauges(record: RunRecord) -> dict[str, dict[str, float]]:
    """slo.burn.{fast,slow}.<objective> gauges, grouped by objective."""
    rates: dict[str, dict[str, float]] = {}
    for name, value in record.gauges.items():
        for window in ("fast", "slow"):
            prefix = f"slo.burn.{window}."
            if name.startswith(prefix):
                rates.setdefault(name[len(prefix):], {})[window] = float(value)
    return rates


def _alerts(record: RunRecord) -> list[str]:
    alerts = record.events_of_type("alert")
    if not alerts:
        return ["  none recorded"]
    by_rule: dict[str, int] = {}
    for event in alerts:
        rule = str(event.get("rule", "?"))
        by_rule[rule] = by_rule.get(rule, 0) + 1
    lines = [
        "  "
        + ", ".join(f"{rule}: {count}" for rule, count in sorted(by_rule.items()))
    ]
    for event in alerts[:TOP_N]:
        slot = event.get("slot")
        where = "" if slot is None else f" (slot {int(slot)})"
        lines.append(
            f"  [{event.get('rule', '?')}]{where} {event.get('message', '')}"
        )
    if len(alerts) > TOP_N:
        lines.append(f"  ... {len(alerts) - TOP_N} more")
    return lines


def doctor_report(
    source: str | Path | RunRecord, *, gap_tol: float = DEFAULT_GAP_TOL
) -> str:
    """Render the post-mortem report for a manifest.

    ``source`` may be a loaded :class:`RunRecord`, a manifest path, or a
    directory (the newest ``*.jsonl`` inside is diagnosed).
    """
    if isinstance(source, RunRecord):
        record = source
        origin = "(in-memory record)"
    else:
        resolved = resolve_manifest_path(source)
        record = load_for_doctor(resolved)
        origin = str(resolved)
    lines = [f"Run post-mortem - {origin}"]
    if record.truncated:
        lines.append(
            "  ** TRUNCATED MANIFEST: the run died before flushing "
            "manifest_end; metrics/spans sections may be missing **"
        )
    lines.append(f"  config: {_fmt_config(record.config)}")
    lines.append(f"  environment: {_fmt_environment(record.environment)}")
    lines.append(
        f"  events: {len(record.events)} "
        f"({len(record.slot_events)} slots, {len(record.run_ends)} runs)"
    )
    sections = (
        ("Slowest slots", _slowest_slots(record)),
        ("Where the time went", _where_time_went(record)),
        ("Watchdog alerts", _alerts(record)),
        ("SLOs & Incidents", _slo_incidents(record)),
        ("Solver incidents", _solver_incidents(record)),
        ("Optimality certificates", _certificates(record, gap_tol)),
        ("Competitive ratio vs Theorem 2", _ratio(record)),
        ("Interior-point convergence", _convergence(record)),
        ("Aggregation", _aggregation(record)),
        ("Parallel sweep", _parallel(record)),
        ("Service", _service(record)),
    )
    for title, body in sections:
        lines.append("")
        lines.append(title)
        lines.extend(body)
    return "\n".join(lines)
