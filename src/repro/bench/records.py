"""Benchmark records: the JSON schema the regression harness speaks.

A benchmark run produces one :class:`BenchRecord` — a named suite, the
commit it ran at, the scale it ran with, and a flat set of metrics. Every
metric is **lower-is-better** and carries a ``kind`` that tells the
comparator how to gate it:

* ``"time"`` — wall-clock seconds; noisy, gated by a relative threshold
  (default 10%, looser in CI);
* ``"count"`` — deterministic work measures (solver iterations, solves);
  gated tightly, a regression here is behavioural, not noise;
* ``"cost"`` — objective values, ratios, certificate gaps; gated at
  solver-tolerance rtol, a regression here is a numerical bug.

Records serialize to a single JSON object (``BENCH_<suite>.json`` by
convention) so baselines can be committed and diffed; the ``format`` tag
is bumped on breaking schema changes.
"""

from __future__ import annotations

import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path

#: Format tag written into every record (bump on breaking change).
BENCH_FORMAT = "repro.bench/1"

#: Metric kinds, in gating order (see module docstring).
METRIC_KINDS = ("time", "count", "cost")


@dataclass(frozen=True)
class BenchMetric:
    """One lower-is-better measurement.

    Attributes:
        value: the measurement.
        unit: display unit (``"s"``, ``"iterations"``, ``"ratio"``, ...).
        kind: gating class — ``"time"``, ``"count"``, or ``"cost"``.
    """

    value: float
    unit: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in METRIC_KINDS:
            raise ValueError(f"unknown metric kind {self.kind!r}")


@dataclass(frozen=True)
class BenchRecord:
    """One benchmark suite run, ready to serialize or compare.

    Attributes:
        suite: suite name (``"smoke"``, ``"solver"``, ...).
        metrics: metric name -> :class:`BenchMetric`.
        config: the scale/settings the suite ran with.
        diagnostics: suite-specific quality evidence (worst certificate
            gap, ratio-bound status, convergence summary, ...) — recorded
            for the post-mortem trail, not gated by the comparator.
        git_commit: the commit the run was taken at (empty outside git).
        created_unix: record creation time (0 when unknown).
        format: schema tag, :data:`BENCH_FORMAT`.
    """

    suite: str
    metrics: dict[str, BenchMetric] = field(default_factory=dict)
    config: dict = field(default_factory=dict)
    diagnostics: dict = field(default_factory=dict)
    git_commit: str = ""
    created_unix: float = 0.0
    format: str = BENCH_FORMAT

    def as_dict(self) -> dict:
        """Plain-dict (JSON-ready) form."""
        return {
            "format": self.format,
            "suite": self.suite,
            "created_unix": self.created_unix,
            "git_commit": self.git_commit,
            "config": self.config,
            "metrics": {
                name: {
                    "value": metric.value,
                    "unit": metric.unit,
                    "kind": metric.kind,
                }
                for name, metric in self.metrics.items()
            },
            "diagnostics": self.diagnostics,
        }


def current_git_commit(cwd: str | Path | None = None) -> str:
    """The checked-out commit hash, or ``""`` when not in a git repo."""
    try:
        return subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
            check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return ""


def write_record(path: str | Path, record: BenchRecord) -> Path:
    """Serialize a record to ``path`` (pretty-printed, trailing newline)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record.as_dict(), indent=2) + "\n")
    return path


def read_record(path: str | Path) -> BenchRecord:
    """Load a record written by :func:`write_record`.

    Raises ``ValueError`` on an unknown format tag or malformed metrics.
    """
    path = Path(path)
    data = json.loads(path.read_text())
    if data.get("format") != BENCH_FORMAT:
        raise ValueError(
            f"{path}: unknown bench record format {data.get('format')!r}"
        )
    metrics = {
        name: BenchMetric(
            value=float(entry["value"]),
            unit=str(entry.get("unit", "")),
            kind=str(entry.get("kind", "cost")),
        )
        for name, entry in data.get("metrics", {}).items()
    }
    return BenchRecord(
        suite=str(data.get("suite", "")),
        metrics=metrics,
        config=data.get("config", {}),
        diagnostics=data.get("diagnostics", {}),
        git_commit=str(data.get("git_commit", "")),
        created_unix=float(data.get("created_unix", 0.0)),
    )
