"""Continuous benchmark/regression harness on the telemetry spine.

Three pieces (see docs/DIAGNOSTICS.md for the workflow):

* :mod:`repro.bench.records` — the ``BENCH_<suite>.json`` schema:
  lower-is-better metrics tagged ``time``/``count``/``cost`` plus a
  diagnostics block and the originating commit;
* :mod:`repro.bench.suites` — named suites (``smoke``, ``solver``,
  ``fig2``, ``fig5``, ``parallel``) wrapping the repo's benchmark
  workloads into plain record-producing functions
  (``repro-edge bench --suite <name>``);
* :mod:`repro.bench.compare` — baseline gating: wall time within a noise
  threshold (advisory by default), iteration counts and costs gated
  deterministically (``repro-edge bench --compare BASELINE.json``);
* :mod:`repro.bench.doctor` — post-mortem rendering of a run manifest,
  including torn ones (``repro-edge doctor MANIFEST.jsonl``).
"""

from .compare import (
    DEFAULT_COST_RTOL,
    DEFAULT_COUNT_RTOL,
    DEFAULT_TIME_THRESHOLD,
    CompareReport,
    MetricDelta,
    compare_records,
)
from .doctor import doctor_report, load_for_doctor, resolve_manifest_path
from .records import (
    BENCH_FORMAT,
    BenchMetric,
    BenchRecord,
    current_git_commit,
    read_record,
    write_record,
)
from .suites import SUITES, run_suite

__all__ = [
    "BENCH_FORMAT",
    "BenchMetric",
    "BenchRecord",
    "CompareReport",
    "DEFAULT_COST_RTOL",
    "DEFAULT_COUNT_RTOL",
    "DEFAULT_TIME_THRESHOLD",
    "MetricDelta",
    "SUITES",
    "compare_records",
    "current_git_commit",
    "doctor_report",
    "load_for_doctor",
    "read_record",
    "resolve_manifest_path",
    "run_suite",
    "write_record",
]
