"""Named benchmark suites over the repo's experiment drivers.

Each suite wraps existing benchmark workloads (the ``benchmarks/`` pytest
suite's fig2/fig5/hessian/parallel measurements) into a plain function
that runs at an :class:`~repro.experiments.settings.ExperimentScale` and
returns a :class:`~repro.bench.records.BenchRecord`. Suites run inside
their own telemetry session, so solver traces and fallback counters land
in the record's ``diagnostics`` block without touching any caller state.

Wall-clock metrics (``kind="time"``) vary with hardware; the iteration
and cost metrics (``kind="count"``/``"cost"``) are deterministic at a
fixed scale, which is what lets CI gate on them with tight tolerances
while treating time as advisory (see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import time
from typing import Callable

from ..core.costs import total_cost
from ..core.regularization import OnlineRegularizedAllocator
from ..diagnostics import (
    competitive_ratio_trace,
    record_ratio_trace,
    summarize_convergence,
    worst_certificate,
)
from ..experiments.fig2 import fig2_scenario, run_fig2
from ..experiments.fig5 import run_fig5
from ..experiments.runner import run_ratio_sweep
from ..experiments.settings import ExperimentScale, all_paper_algorithms
from ..solvers.registry import get_backend
from ..telemetry import MetricsRegistry, telemetry_session
from .records import BenchMetric, BenchRecord, current_git_commit

#: Hour cases used by the sweep-based suites (a subset keeps them fast).
SUITE_HOURS = ("3pm", "4pm")


def _time_metric(seconds: float) -> BenchMetric:
    return BenchMetric(value=seconds, unit="s", kind="time")


def _count_metric(value: float, unit: str = "iterations") -> BenchMetric:
    return BenchMetric(value=float(value), unit=unit, kind="count")


def _cost_metric(value: float, unit: str = "cost") -> BenchMetric:
    return BenchMetric(value=float(value), unit=unit, kind="cost")


def _registry_diagnostics(registry: MetricsRegistry) -> dict:
    """Solver-health summary harvested from a suite's telemetry session."""
    convergence = summarize_convergence(registry)
    return {
        "convergence": convergence.as_dict(),
        "fallbacks": registry.counter("solver.fallbacks").value,
        "circuit_breaker_opened": registry.counter(
            "solver.circuit_breaker.opened"
        ).value,
    }


def _suite_smoke(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """One certified online run on the fig2 scenario.

    The fastest end-to-end measurement that still exercises the whole
    spine: scenario build, streaming controller, IPM solves, certificate
    and ratio diagnostics, cost accounting.
    """
    instance = fig2_scenario(scale).build(seed=scale.seed)
    algorithm = OnlineRegularizedAllocator(
        eps1=scale.eps, eps2=scale.eps, certify=True
    )
    start = time.perf_counter()
    schedule = algorithm.run(instance)
    wall_s = time.perf_counter() - start
    cost = total_cost(schedule, instance)
    trace = competitive_ratio_trace(
        instance,
        schedule,
        eps1=scale.eps,
        eps2=scale.eps,
        every=max(1, scale.num_slots // 4),
    )
    record_ratio_trace(trace, registry)
    worst = worst_certificate(algorithm.last_certificates)
    metrics = {
        "online_run_wall_s": _time_metric(wall_s),
        "solver_iterations": _count_metric(algorithm.total_solver_iterations),
        "solves": _count_metric(len(algorithm.last_solves), unit="solves"),
        "online_cost": _cost_metric(cost),
        "final_ratio": _cost_metric(trace.final_ratio, unit="ratio"),
        "worst_relative_gap": _cost_metric(
            worst.relative_gap if worst else 0.0, unit="gap"
        ),
    }
    diagnostics = {
        "ratio_bound": trace.bound,
        "ratio_certified": trace.certified,
        "worst_prefix_ratio": trace.worst_ratio,
        "certificates_ok": all(c.ok() for c in algorithm.last_certificates),
        "worst_kkt_residual": max(
            (c.kkt_residual for c in algorithm.last_certificates), default=0.0
        ),
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


def _suite_solver(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """Solver-focused measurements: Hessian assembly + warm-start value.

    Wraps ``benchmarks/bench_hessian.py`` (sparse assembly wall time at a
    fixed operating point) and the warm-vs-cold leg of
    ``benchmarks/bench_parallel.py`` (iteration reduction on the fig2
    instance, identical trajectory cost).
    """
    import numpy as np

    from ..core.subproblem import RegularizedSubproblem
    from ..simulation.scenario import Scenario

    # Hessian assembly at (at least) double the suite's user count.
    num_users = max(2 * scale.num_users, 48)
    instance = Scenario(num_users=num_users, num_slots=2).build(seed=scale.seed)
    rng = np.random.default_rng(scale.seed)
    x_prev = rng.uniform(0.0, 1.0, size=(instance.num_clouds, num_users))
    x_prev *= np.asarray(instance.workloads)[None, :] / instance.num_clouds
    subproblem = RegularizedSubproblem.from_instance(
        instance, slot=1, x_prev=x_prev, eps1=scale.eps, eps2=scale.eps
    )
    flat = x_prev.ravel() + 0.1
    start = time.perf_counter()
    hessian = subproblem.hessian(flat)
    hessian_s = time.perf_counter() - start

    # Warm vs cold interior-point solves on the fig2 instance.
    fig2_instance = fig2_scenario(scale).build(seed=scale.seed)
    backend = get_backend("ipm")
    runs = {}
    for label, warm in (("cold", False), ("warm", True)):
        algorithm = OnlineRegularizedAllocator(
            eps1=scale.eps, eps2=scale.eps, backend=backend, warm_start=warm
        )
        start = time.perf_counter()
        schedule = algorithm.run(fig2_instance)
        elapsed = time.perf_counter() - start
        runs[label] = {
            "cost": total_cost(schedule, fig2_instance),
            "iterations": algorithm.total_solver_iterations,
            "wall_s": elapsed,
        }
    metrics = {
        "hessian_assembly_s": _time_metric(hessian_s),
        "hessian_nnz": _count_metric(hessian.nnz, unit="nonzeros"),
        "cold_iterations": _count_metric(runs["cold"]["iterations"]),
        "warm_iterations": _count_metric(runs["warm"]["iterations"]),
        "warm_run_wall_s": _time_metric(runs["warm"]["wall_s"]),
        "online_cost": _cost_metric(runs["warm"]["cost"]),
    }
    diagnostics = {
        "hessian_users": num_users,
        "warm_cost_matches_cold": bool(
            abs(runs["warm"]["cost"] - runs["cold"]["cost"])
            <= 1e-6 * max(1.0, abs(runs["cold"]["cost"]))
        ),
        "iteration_reduction_pct": 100.0
        * (1.0 - runs["warm"]["iterations"] / max(1, runs["cold"]["iterations"])),
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


def _suite_fig2(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """The Figure 2 ratio sweep (subset of hours) as a benchmark."""
    start = time.perf_counter()
    points = run_fig2(scale, hours=SUITE_HOURS)
    wall_s = time.perf_counter() - start
    approx = [p.mean_ratio("online-approx") for p in points]
    greedy = [p.mean_ratio("online-greedy") for p in points]
    metrics = {
        "sweep_wall_s": _time_metric(wall_s),
        "mean_ratio_online_approx": _cost_metric(
            sum(approx) / len(approx), unit="ratio"
        ),
        "mean_ratio_online_greedy": _cost_metric(
            sum(greedy) / len(greedy), unit="ratio"
        ),
        "worst_ratio_online_approx": _cost_metric(max(approx), unit="ratio"),
    }
    return {"metrics": metrics, "diagnostics": {"hours": list(SUITE_HOURS)}}


def _suite_fig5(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """The Figure 5 random-walk sweep (two user counts) as a benchmark."""
    user_counts = (max(scale.num_users // 2, 4), scale.num_users)
    start = time.perf_counter()
    points = run_fig5(scale, user_counts=user_counts)
    wall_s = time.perf_counter() - start
    approx = [p.mean_ratio("online-approx") for p in points]
    metrics = {
        "sweep_wall_s": _time_metric(wall_s),
        "mean_ratio_online_approx": _cost_metric(
            sum(approx) / len(approx), unit="ratio"
        ),
        "worst_ratio_online_approx": _cost_metric(max(approx), unit="ratio"),
    }
    return {
        "metrics": metrics,
        "diagnostics": {"user_counts": list(user_counts)},
    }


def _suite_parallel(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """Serial vs process-pool sweep execution (fig2-style grid).

    The determinism invariant (identical ratios at any worker count) is
    recorded in ``diagnostics`` — a ``False`` there is a correctness bug,
    not a performance regression.
    """
    scenario = fig2_scenario(scale)
    algorithms = all_paper_algorithms(scale.eps)
    cases = [
        (hour, scenario, algorithms, scale.seed + 1000 * case)
        for case, hour in enumerate(SUITE_HOURS)
    ]
    start = time.perf_counter()
    serial = run_ratio_sweep(cases, repetitions=scale.repetitions, workers=1)
    serial_s = time.perf_counter() - start
    start = time.perf_counter()
    pooled = run_ratio_sweep(cases, repetitions=scale.repetitions, workers=4)
    pooled_s = time.perf_counter() - start
    deterministic = all(
        ser.label == par.label and ser.stats == par.stats
        for ser, par in zip(serial, pooled)
    )
    metrics = {
        "serial_wall_s": _time_metric(serial_s),
        "pooled_wall_s": _time_metric(pooled_s),
        "grid_cells": _count_metric(
            len(cases) * scale.repetitions, unit="cells"
        ),
    }
    diagnostics = {
        "speedup": serial_s / pooled_s if pooled_s > 0 else 0.0,
        "pool_matches_serial": deterministic,
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


def _city_slot(num_users: int, seed: int):
    """One synthetic city-scale (system, observation) pair.

    The fig2 generators at an arbitrary user count: Rome metro topology,
    power-law workloads, uniform random attachment, frequency-provisioned
    capacities — but a single slot, which is all the aggregation suite
    measures (the layer is stateless across counts here).
    """
    import numpy as np

    from ..core.problem import CostWeights
    from ..pricing.bandwidth import isp_migration_prices
    from ..pricing.capacity import provision_capacities
    from ..pricing.operation import gaussian_operation_prices
    from ..pricing.reconfiguration import gaussian_reconfiguration_prices
    from ..simulation.observations import SlotObservation, SystemDescription
    from ..topology.delays import inter_cloud_delay_matrix
    from ..topology.metro import rome_metro_topology
    from ..workload.distributions import make_workloads

    topology = rome_metro_topology()
    num_clouds = topology.num_sites
    rng = np.random.default_rng(seed)
    workloads = make_workloads("power", num_users, rng)
    attachment = rng.integers(0, num_clouds, size=num_users)
    capacities = provision_capacities(workloads, attachment[None, :], num_clouds)
    system = SystemDescription(
        workloads=workloads,
        capacities=capacities,
        reconfig_prices=gaussian_reconfiguration_prices(num_clouds, rng),
        migration_prices=isp_migration_prices(num_clouds, rng=rng),
        inter_cloud_delay=inter_cloud_delay_matrix(topology, price_per_km=2.0),
        weights=CostWeights(),
    )
    observation = SlotObservation(
        slot=0,
        op_prices=gaussian_operation_prices(capacities, 1, rng)[0],
        attachment=attachment,
        access_delay=np.zeros(num_users),
    )
    return system, observation


def _suite_aggregate(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """City-scale aggregation: 10k/100k/1M-user slots vs a direct solve.

    For each user count, one :class:`repro.aggregate.AggregatedController`
    slot is timed end to end (cohort build, sharded reduced solve,
    proportional disaggregation); a per-user solve at J=120 provides the
    wall-clock reference the 1M aggregated slot is compared against in
    ``diagnostics``. Cohort counts and reduction ratios are deterministic
    at a fixed seed, so CI gates on them; wall times stay advisory. Counts
    scale with ``scale.num_users`` so tests can run the suite small.
    """
    import numpy as np

    from ..aggregate import AggregatedController, AggregationConfig
    from ..experiments.settings import DEFAULT_NUM_USERS

    factor = scale.num_users / DEFAULT_NUM_USERS
    labelled_counts = [
        (label, max(30, int(n * factor)))
        for label, n in (("10k", 10_000), ("100k", 100_000), ("1m", 1_000_000))
    ]
    config = AggregationConfig(lambda_buckets=8, shards=4, workers=1)
    metrics: dict[str, BenchMetric] = {}
    walls: dict[str, float] = {}
    worst_residual = 0.0
    reports = {}
    for label, num_users in labelled_counts:
        system, observation = _city_slot(num_users, scale.seed)
        controller = AggregatedController(
            system=system,
            algorithm=OnlineRegularizedAllocator(eps1=scale.eps, eps2=scale.eps),
            config=config,
        )
        start = time.perf_counter()
        x = controller.observe(observation)
        walls[label] = time.perf_counter() - start
        report = controller.last_reports[-1]
        reports[label] = report
        worst_residual = max(
            worst_residual,
            float((np.asarray(system.workloads) - x.sum(axis=0)).max()),
            float((x.sum(axis=1) - np.asarray(system.capacities)).max()),
            float((-x).max()),
        )
        metrics[f"agg_wall_s_{label}"] = _time_metric(walls[label])
        metrics[f"cohorts_{label}"] = _count_metric(report.cohorts, unit="cohorts")
        metrics[f"reduction_{label}"] = _count_metric(
            report.reduction_ratio, unit="x"
        )

    # The per-user reference: one direct P2 solve at the paper-adjacent
    # J=120 (scaled with the suite so tiny test scales stay tiny).
    direct_users = max(6, int(120 * factor))
    system, observation = _city_slot(direct_users, scale.seed)
    direct = OnlineRegularizedAllocator(
        eps1=scale.eps, eps2=scale.eps
    ).as_controller(system)
    start = time.perf_counter()
    direct.observe(observation)
    direct_wall_s = time.perf_counter() - start
    metrics["direct_wall_s_j120"] = _time_metric(direct_wall_s)
    metrics["feasibility_residual"] = _cost_metric(worst_residual, unit="residual")

    diagnostics = {
        "user_counts": {label: count for label, count in labelled_counts},
        "direct_users": direct_users,
        "shards": config.shards,
        "lambda_buckets": config.lambda_buckets,
        "wall_ratio_1m_vs_direct": walls["1m"] / max(direct_wall_s, 1e-9),
        "spread_1m": reports["1m"].spread,
        "error_bound_1m": reports["1m"].error_bound,
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


def _suite_service(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """The live service loop: fig2-scale replay through the TCP server.

    Two replays of the same observation stream (as fast as possible, so
    latency percentiles measure the *service*, not the pacing):

    * **generous budget** (30 s deadline, never fires) — must match the
      unbudgeted batch run to solver precision with zero deadline misses;
      the gated invariant behind ``repro-edge loadgen --require-zero-misses
      --max-cost-delta 1e-9`` in CI's service-smoke job.
    * **tight iteration budget** — every solve truncated, the degradation
      ladder engaged on every slot; gates that the budget machinery stays
      deterministic (partial counts) while the realized cost stays
      bounded (``budget_cost_ratio`` in diagnostics).

    Latency percentiles are wall-clock and therefore advisory.
    """
    from ..service import ServiceConfig, run_loadgen
    from ..simulation.observations import (
        SystemDescription,
        observations_from_instance,
    )

    instance = fig2_scenario(scale).build(seed=scale.seed)
    system = SystemDescription.from_instance(instance)
    observations = observations_from_instance(instance)

    generous = ServiceConfig(deadline_s=30.0, eps1=scale.eps, eps2=scale.eps)
    report = run_loadgen(system, observations, generous, speed=0)

    tight = ServiceConfig(max_iterations=3, eps1=scale.eps, eps2=scale.eps)
    degraded = run_loadgen(
        system, observations, tight, speed=0, batch_reference=False
    )

    metrics = {
        "replay_wall_s": _time_metric(report.wall_s),
        "latency_p50_ms": BenchMetric(report.latency_p50_ms, "ms", "time"),
        "latency_p95_ms": BenchMetric(report.latency_p95_ms, "ms", "time"),
        "latency_p99_ms": BenchMetric(report.latency_p99_ms, "ms", "time"),
        "deadline_misses": _count_metric(report.deadline_misses, unit="misses"),
        "partial_slots": _count_metric(report.partial_slots, unit="slots"),
        "streamed_cost": _cost_metric(report.streamed_cost),
        "cost_delta_abs": _cost_metric(abs(report.cost_delta), unit="delta"),
        "budget_partial_slots": _count_metric(
            degraded.partial_slots, unit="slots"
        ),
    }
    diagnostics = {
        "slots": report.slots,
        "batch_cost": report.batch_cost,
        "budget_streamed_cost": degraded.streamed_cost,
        "budget_cost_ratio": degraded.streamed_cost
        / max(report.batch_cost, 1e-9),
        "budget_deadline_misses": degraded.deadline_misses,
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


def _batch_subproblems(scale: ExperimentScale, count: int):
    """Deterministic P2 instances shaped like one sweep slot's solves."""
    import numpy as np

    from ..core.subproblem import RegularizedSubproblem

    rng = np.random.default_rng(scale.seed)
    num_clouds = 6
    num_users = scale.num_users
    subproblems = []
    for _ in range(count):
        workloads = rng.integers(1, 6, size=num_users).astype(float)
        capacities = workloads.sum() * (0.3 + rng.dirichlet(np.ones(num_clouds)))
        capacities *= 1.5 * workloads.sum() / capacities.sum()
        x_prev = rng.uniform(0.0, 1.0, size=(num_clouds, num_users))
        x_prev *= workloads[None, :] / num_clouds
        subproblems.append(
            RegularizedSubproblem(
                static_prices=rng.uniform(0.05, 2.0, size=(num_clouds, num_users)),
                reconfig_prices=rng.uniform(0.1, 2.0, size=num_clouds),
                migration_prices=rng.uniform(0.1, 2.0, size=num_clouds),
                capacities=capacities,
                workloads=workloads,
                x_prev=x_prev,
                eps1=scale.eps,
                eps2=scale.eps,
            )
        )
    return subproblems


def _suite_batched(scale: ExperimentScale, registry: MetricsRegistry) -> dict:
    """Batched P2 solves and zero-copy dispatch vs their serial twins.

    Three measurements (docs/PERFORMANCE.md reads from this record):

    * **stacked solve** — ``scale.num_slots`` same-shape P2 instances
      solved sequentially by :class:`InteriorPointBackend` and as one
      :func:`repro.solvers.batched.solve_batch` call. Bit-identity is
      gated (``stack_bit_identical``); walls are advisory.
    * **batched sweep** — ``run_ratio_sweep`` with and without
      ``batch_solves=True`` on the fig2 grid; the stats must match
      exactly (``sweep_stats_match``).
    * **dispatch bytes** — what actually crosses the worker pipe for a
      sweep-cell-sized item, pickled wholesale vs the shared-memory
      skeleton, at 1x and 8x the suite's user count. Byte counts are
      deterministic, so CI gates that the shm skeleton stays flat while
      the pickled payload grows with the instance.
    """
    import pickle

    import numpy as np

    from ..parallel import shm
    from ..solvers.batched import solve_batch
    from ..solvers.interior_point import InteriorPointBackend

    # Stacked solve vs a sequential loop over the same programs.
    subproblems = _batch_subproblems(scale, max(4, scale.num_slots))
    backend = InteriorPointBackend()
    sequential = []
    start = time.perf_counter()
    for sub in subproblems:
        sequential.append(backend.solve(sub.build_program()))
    sequential_s = time.perf_counter() - start
    programs = [sub.build_program() for sub in subproblems]
    start = time.perf_counter()
    batched = solve_batch(programs)
    batched_s = time.perf_counter() - start
    identical = all(
        np.array_equal(seq.x, bat.x)
        and seq.objective == bat.objective
        and seq.iterations == bat.iterations
        for seq, bat in zip(sequential, batched)
    )

    # Sweep-level: the lockstep runner vs the plain serial sweep.
    scenario = fig2_scenario(scale)
    algorithms = all_paper_algorithms(scale.eps)
    cases = [
        (hour, scenario, algorithms, scale.seed + 1000 * case)
        for case, hour in enumerate(SUITE_HOURS)
    ]
    start = time.perf_counter()
    plain = run_ratio_sweep(cases, repetitions=scale.repetitions, workers=1)
    sweep_plain_s = time.perf_counter() - start
    start = time.perf_counter()
    lockstep = run_ratio_sweep(
        cases, repetitions=scale.repetitions, workers=1, batch_solves=True
    )
    sweep_batched_s = time.perf_counter() - start
    stats_match = all(
        ser.label == bat.label and ser.stats == bat.stats
        for ser, bat in zip(plain, lockstep)
    )

    # Dispatch bytes: full pickle vs the shm skeleton, two instance sizes.
    def _dispatch_bytes(num_users: int) -> tuple[int, int]:
        rng = np.random.default_rng(scale.seed)
        item = (
            rng.uniform(size=(6, num_users)),
            rng.uniform(size=(6, num_users)),
            rng.uniform(size=num_users),
        )
        pickled = len(pickle.dumps(item, protocol=5))
        arena = shm.encode_items([item])
        try:
            skeleton = len(arena.refs[0].payload)
        finally:
            arena.close()
        return pickled, skeleton

    pickled_1x, skeleton_1x = _dispatch_bytes(scale.num_users)
    pickled_8x, skeleton_8x = _dispatch_bytes(8 * scale.num_users)

    metrics = {
        "stack_sequential_wall_s": _time_metric(sequential_s),
        "stack_batched_wall_s": _time_metric(batched_s),
        "stack_bit_identical": _count_metric(int(identical), unit="bool"),
        "stack_iterations": _count_metric(
            sum(r.iterations for r in batched)
        ),
        "sweep_plain_wall_s": _time_metric(sweep_plain_s),
        "sweep_batched_wall_s": _time_metric(sweep_batched_s),
        "sweep_stats_match": _count_metric(int(stats_match), unit="bool"),
        "pipe_bytes_pickled_1x": _count_metric(pickled_1x, unit="bytes"),
        "pipe_bytes_pickled_8x": _count_metric(pickled_8x, unit="bytes"),
        "pipe_bytes_shm_1x": _count_metric(skeleton_1x, unit="bytes"),
        "pipe_bytes_shm_8x": _count_metric(skeleton_8x, unit="bytes"),
    }
    diagnostics = {
        "stack_instances": len(subproblems),
        "stack_speedup": sequential_s / batched_s if batched_s > 0 else 0.0,
        "sweep_speedup": (
            sweep_plain_s / sweep_batched_s if sweep_batched_s > 0 else 0.0
        ),
        "pickled_growth_8x": pickled_8x / max(pickled_1x, 1),
        "shm_growth_8x": skeleton_8x / max(skeleton_1x, 1),
        "batched_instances": registry.counter("solver.batched.instances").value,
        "jit_groups": registry.counter("solver.batched.jit_groups").value,
    }
    return {"metrics": metrics, "diagnostics": diagnostics}


#: The suite registry: name -> implementation.
SUITES: dict[str, Callable[[ExperimentScale, MetricsRegistry], dict]] = {
    "smoke": _suite_smoke,
    "solver": _suite_solver,
    "fig2": _suite_fig2,
    "fig5": _suite_fig5,
    "parallel": _suite_parallel,
    "batched": _suite_batched,
    "aggregate": _suite_aggregate,
    "service": _suite_service,
}


def run_suite(
    name: str,
    scale: ExperimentScale | None = None,
    *,
    timestamp: float | None = None,
) -> BenchRecord:
    """Run one named suite and return its :class:`BenchRecord`.

    The suite executes inside a fresh telemetry session (nested sessions
    restore the caller's registry on exit), and the session's solver-health
    summary — convergence statistics, fallback and circuit-breaker counts —
    is folded into the record's diagnostics.
    """
    if name not in SUITES:
        known = ", ".join(sorted(SUITES))
        raise ValueError(f"unknown bench suite {name!r} (known: {known})")
    scale = scale or ExperimentScale()
    with telemetry_session() as registry:
        outcome = SUITES[name](scale, registry)
        solver_health = _registry_diagnostics(registry)
    return BenchRecord(
        suite=name,
        metrics=outcome["metrics"],
        config={
            "num_users": scale.num_users,
            "num_slots": scale.num_slots,
            "repetitions": scale.repetitions,
            "seed": scale.seed,
            "eps": scale.eps,
        },
        diagnostics={**outcome["diagnostics"], **solver_health},
        git_commit=current_git_commit(),
        created_unix=timestamp if timestamp is not None else time.time(),
    )
