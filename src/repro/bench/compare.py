"""Baseline comparison: gate benchmark records against a committed one.

Every metric is lower-is-better; a metric *regresses* when its current
value exceeds the baseline by more than its kind's allowance:

* ``time``   — relative ``threshold`` (default 10%; CI uses 25% because
  shared runners are noisy). Advisory by design: flag, don't fail, unless
  the caller asks (``gate_time=True``).
* ``count``  — relative ``count_rtol`` (default 2%). Iteration counts are
  deterministic at fixed scale and seed, so any real movement means the
  solver's behaviour changed.
* ``cost``   — relative ``cost_rtol`` (default 1e-6, solver tolerance),
  against the scale ``max(1, |baseline|)`` — the repo's relative-gap
  convention, which keeps near-zero baselines (duality gaps) gateable.
  Objectives and ratios must not move at all beyond numerical noise.

Comparing a record against itself therefore always yields zero
regressions — the round-trip invariant ``tests/bench`` pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .records import BenchRecord

#: Default relative allowance for wall-clock metrics.
DEFAULT_TIME_THRESHOLD = 0.10
#: Default relative allowance for deterministic work counts.
DEFAULT_COUNT_RTOL = 0.02
#: Default relative allowance for objective/ratio metrics.
DEFAULT_COST_RTOL = 1e-6


@dataclass(frozen=True)
class MetricDelta:
    """One metric's baseline-vs-current movement.

    Attributes:
        name: metric name.
        kind: gating class of the metric (``time``/``count``/``cost``).
        baseline: baseline value.
        current: current value.
        allowance: the relative allowance that was applied.
        regressed: current exceeded baseline beyond the allowance.
    """

    name: str
    kind: str
    baseline: float
    current: float
    allowance: float
    regressed: bool

    @property
    def relative_change(self) -> float:
        """Signed relative change vs the baseline (0 when baseline is 0)."""
        if self.baseline == 0.0:
            return 0.0 if self.current == 0.0 else float("inf")
        return (self.current - self.baseline) / abs(self.baseline)


@dataclass(frozen=True)
class CompareReport:
    """The comparator's verdict, renderable and gateable.

    ``ok`` is the CI gate: no gated regressions and no metrics missing
    from the current record. Time regressions count only when
    ``gate_time`` was set; they are always *listed*.
    """

    baseline_suite: str
    deltas: list[MetricDelta] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    gated_kinds: tuple[str, ...] = ("count", "cost")

    @property
    def regressions(self) -> list[MetricDelta]:
        """Every regressed metric, gated or not."""
        return [d for d in self.deltas if d.regressed]

    @property
    def gated_regressions(self) -> list[MetricDelta]:
        """Regressions in kinds the caller chose to fail on."""
        return [d for d in self.regressions if d.kind in self.gated_kinds]

    @property
    def ok(self) -> bool:
        """Whether the current record passes the gate."""
        return not self.gated_regressions and not self.missing

    def render(self) -> str:
        """Human-readable comparison table."""
        lines = [f"Benchmark comparison vs baseline ({self.baseline_suite})"]
        for delta in self.deltas:
            change = delta.relative_change
            status = "REGRESSED" if delta.regressed else "ok"
            if delta.regressed and delta.kind not in self.gated_kinds:
                status = "regressed (advisory)"
            lines.append(
                f"  {delta.name:28s} {delta.kind:5s} "
                f"{delta.baseline:12.6g} -> {delta.current:12.6g} "
                f"({change:+8.2%})  {status}"
            )
        for name in self.missing:
            lines.append(f"  {name:28s} MISSING from current record")
        for name in self.added:
            lines.append(f"  {name:28s} new metric (no baseline)")
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"  => {verdict}: {len(self.gated_regressions)} gated regression(s),"
            f" {len(self.regressions)} total, {len(self.missing)} missing"
        )
        return "\n".join(lines)


def compare_records(
    baseline: BenchRecord,
    current: BenchRecord,
    *,
    time_threshold: float = DEFAULT_TIME_THRESHOLD,
    count_rtol: float = DEFAULT_COUNT_RTOL,
    cost_rtol: float = DEFAULT_COST_RTOL,
    gate_time: bool = False,
) -> CompareReport:
    """Compare a current record against a baseline.

    Args:
        baseline: the committed reference record.
        current: the fresh run.
        time_threshold: relative allowance for ``time`` metrics.
        count_rtol: relative allowance for ``count`` metrics.
        cost_rtol: relative allowance for ``cost`` metrics.
        gate_time: also fail the gate on time regressions (off by default:
            wall time on shared hardware is advisory).

    Raises:
        ValueError: when the records belong to different suites.
    """
    if baseline.suite != current.suite:
        raise ValueError(
            f"suite mismatch: baseline {baseline.suite!r}"
            f" vs current {current.suite!r}"
        )
    allowances = {
        "time": time_threshold,
        "count": count_rtol,
        "cost": cost_rtol,
    }
    deltas = []
    for name, base in baseline.metrics.items():
        if name not in current.metrics:
            continue
        now = current.metrics[name]
        allowance = allowances.get(base.kind, cost_rtol)
        # Cost metrics use the repo-wide relative-gap convention
        # ``max(1, |value|)`` as the scale, so a near-zero baseline (e.g.
        # a duality gap of 3e-8) gets an absolute allowance of cost_rtol
        # rather than an untestable 3e-14.
        floor = 1.0 if base.kind == "cost" else 1e-12
        limit = base.value + allowance * max(abs(base.value), floor)
        deltas.append(
            MetricDelta(
                name=name,
                kind=base.kind,
                baseline=base.value,
                current=now.value,
                allowance=allowance,
                regressed=now.value > limit,
            )
        )
    gated = ("time", "count", "cost") if gate_time else ("count", "cost")
    return CompareReport(
        baseline_suite=baseline.suite,
        deltas=deltas,
        missing=sorted(set(baseline.metrics) - set(current.metrics)),
        added=sorted(set(current.metrics) - set(baseline.metrics)),
        gated_kinds=gated,
    )
