"""Figure 4: sensitivity to the regularization parameter eps and the
dynamic/static weight ratio mu.

* **eps sweep** — eps1 = eps2 = eps varied over [1e-3, 1e3] (log scale).
  The paper observes the empirical ratio "declines slightly at the
  beginning and then increases to a stable level".
* **mu sweep** — mu = (dynamic weight)/(static weight) over [1e-3, 1e3].
  For small mu (static cost dominates) the algorithm is near-optimal; for
  large mu it stays at "a stable yet reasonably good competitive ratio".

Both sweeps also report the theoretical bound r = 1 + gamma |I| alongside
the empirical ratio (the Remark after Theorem 2: the bound is monotonically
decreasing in eps).
"""

from __future__ import annotations

import numpy as np

from ..baselines import OfflineOptimal, OnlineGreedy
from ..core.bounds import competitive_ratio_bound
from ..core.regularization import OnlineRegularizedAllocator
from ..simulation.scenario import Scenario
from .runner import RatioPoint, ratio_table, run_ratio_sweep
from .settings import ExperimentScale

#: Paper sweep: 1e-3 .. 1e3 in decades.
EPS_VALUES = tuple(float(v) for v in np.logspace(-3, 3, 7))
MU_VALUES = tuple(float(v) for v in np.logspace(-3, 3, 7))


def run_eps_sweep(
    scale: ExperimentScale | None = None,
    *,
    eps_values: tuple[float, ...] = EPS_VALUES,
) -> list[RatioPoint]:
    """Empirical ratio of online-approx (and greedy) per eps value."""
    scale = scale or ExperimentScale()
    scenario = Scenario(
        num_users=scale.num_users,
        num_slots=scale.num_slots,
        workload_distribution="power",
    )
    cases = [
        (
            f"eps={eps:g}",
            scenario,
            [
                OfflineOptimal(),
                OnlineGreedy(),
                OnlineRegularizedAllocator(eps1=eps, eps2=eps),
            ],
            scale.seed,
        )
        for eps in eps_values
    ]
    return run_ratio_sweep(
        cases,
        repetitions=scale.repetitions,
        workers=scale.workers,
        keep_schedules=scale.keep_schedules,
        batch_solves=scale.batch_solves,
        use_shm=scale.use_shm,
    )


def run_mu_sweep(
    scale: ExperimentScale | None = None,
    *,
    mu_values: tuple[float, ...] = MU_VALUES,
) -> list[RatioPoint]:
    """Empirical ratio per dynamic/static weight ratio mu."""
    scale = scale or ExperimentScale()
    cases = [
        (
            f"mu={mu:g}",
            Scenario(
                num_users=scale.num_users,
                num_slots=scale.num_slots,
                workload_distribution="power",
            ).with_mu(mu),
            [
                OfflineOptimal(),
                OnlineGreedy(),
                OnlineRegularizedAllocator(eps1=scale.eps, eps2=scale.eps),
            ],
            scale.seed,
        )
        for mu in mu_values
    ]
    return run_ratio_sweep(
        cases,
        repetitions=scale.repetitions,
        workers=scale.workers,
        keep_schedules=scale.keep_schedules,
        batch_solves=scale.batch_solves,
        use_shm=scale.use_shm,
    )


def theoretical_bounds(
    scale: ExperimentScale,
    eps_values: tuple[float, ...] = EPS_VALUES,
    *,
    seed: int | None = None,
) -> dict[float, float]:
    """Theorem 2's r = 1 + gamma |I| per eps, on one drawn instance."""
    scale = scale or ExperimentScale()
    scenario = Scenario(
        num_users=scale.num_users,
        num_slots=scale.num_slots,
        workload_distribution="power",
    )
    instance = scenario.build(seed=scale.seed if seed is None else seed)
    return {
        eps: competitive_ratio_bound(instance, eps, eps) for eps in eps_values
    }


def fig4_report(
    eps_points: list[RatioPoint],
    mu_points: list[RatioPoint],
    bounds: dict[float, float] | None = None,
) -> str:
    """Both sweeps rendered as tables, plus the theoretical-bound column."""
    lines = [
        "Figure 4 - impact of eps (empirical ratio, online-approx vs greedy)",
        ratio_table(eps_points, axis_name="eps"),
        "",
        "Figure 4 - impact of mu = dynamic/static weight",
        ratio_table(mu_points, axis_name="mu"),
    ]
    if bounds:
        lines.append("")
        lines.append("Theorem 2 bound r = 1 + gamma|I| (monotone decreasing in eps):")
        for eps, bound in bounds.items():
            lines.append(f"  eps={eps:<8g} r={bound:.4g}")
    return "\n".join(lines)
