"""Figure 3: competitive ratios under uniform and normal workloads.

Same setting as Figure 2 with the user-workload distribution swapped; the
paper reports that online-approx "preserves similar properties ... under
any of the workload distributions" (near-optimal, up to 70% better than
online-greedy) "and performs even slightly better under uniform workloads".
"""

from __future__ import annotations

from ..simulation.scenario import Scenario
from .runner import RatioPoint, ratio_table, run_ratio_sweep
from .settings import ExperimentScale, aggregation_config, all_paper_algorithms

#: The distributions of Figure 3 (Figure 2 covers "power").
DISTRIBUTIONS = ("uniform", "normal")


def run_fig3(
    scale: ExperimentScale | None = None,
    *,
    distributions: tuple[str, ...] = DISTRIBUTIONS,
) -> list[RatioPoint]:
    """One RatioPoint per workload distribution."""
    scale = scale or ExperimentScale()
    algorithms = all_paper_algorithms(scale.eps, aggregation_config(scale))
    cases = [
        (
            distribution,
            Scenario(
                num_users=scale.num_users,
                num_slots=scale.num_slots,
                workload_distribution=distribution,
            ),
            algorithms,
            scale.seed + 1000 * k,
        )
        for k, distribution in enumerate(distributions)
    ]
    return run_ratio_sweep(
        cases,
        repetitions=scale.repetitions,
        workers=scale.workers,
        keep_schedules=scale.keep_schedules,
        batch_solves=scale.batch_solves,
        use_shm=scale.use_shm,
    )


def fig3_report(points: list[RatioPoint]) -> str:
    """The Figure 3 table plus the improvement-over-greedy headline."""
    lines = [
        "Figure 3 - competitive ratio under uniform / normal workloads",
        ratio_table(points, axis_name="workload"),
        "",
    ]
    for point in points:
        approx = point.mean_ratio("online-approx")
        greedy = point.mean_ratio("online-greedy")
        lines.append(
            f"{point.label}: online-approx {approx:.3f}, improvement over "
            f"greedy {100 * (greedy - approx) / greedy:.1f}% (paper: up to 70%)"
        )
    return "\n".join(lines)
