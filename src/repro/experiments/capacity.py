"""EXT-CAPACITY: how much over-provisioning does online allocation need?

The paper fixes the system at 80% utilization (total capacity = 1.25x the
total workload, Section V-A) without examining the choice. This driver
sweeps the over-provisioning factor from nearly-tight to generous and
measures every algorithm's empirical ratio — the operational question an
edge operator actually faces when sizing a deployment.

Expected shape: tight capacity hurts everyone (forced spillover churns
allocations), the online algorithms recover quickly with headroom, and
beyond the paper's 1.25x the curves flatten.
"""

from __future__ import annotations

from dataclasses import replace

from ..simulation.scenario import Scenario
from .runner import RatioPoint, run_ratio_point
from .settings import ExperimentScale, holistic_algorithms

#: Sweep from nearly-tight to generous; the paper's point is 1.25.
OVERPROVISION_FACTORS = (1.05, 1.1, 1.25, 1.5, 2.0)


def run_capacity_sweep(
    scale: ExperimentScale | None = None,
    *,
    factors: tuple[float, ...] = OVERPROVISION_FACTORS,
) -> list[RatioPoint]:
    """One RatioPoint per over-provisioning factor."""
    scale = scale or ExperimentScale()
    base = Scenario(
        num_users=scale.num_users,
        num_slots=scale.num_slots,
        workload_distribution="power",
    )
    points = []
    for factor in factors:
        scenario = replace(base, overprovision=factor)
        points.append(
            run_ratio_point(
                f"capacity={factor:g}x",
                scenario,
                holistic_algorithms(scale.eps),
                repetitions=scale.repetitions,
                seed=scale.seed,
            )
        )
    return points
