"""Plain-text rendering of experiment results (paper-style tables).

The paper reports bar charts of empirical competitive ratios with error
bars over five repetitions; the harness prints the same content as rows of
``mean +/- std`` per algorithm and test case.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with left-aligned first column."""
    materialized = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for k, cell in enumerate(row):
            widths[k] = max(widths[k], len(cell))
    lines = [
        "  ".join(h.ljust(widths[k]) for k, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(cell.ljust(widths[k]) for k, cell in enumerate(row)))
    return "\n".join(lines)


def format_mean_std(mean: float, std: float, *, digits: int = 3) -> str:
    """``1.102 +/- 0.014`` style cell."""
    return f"{mean:.{digits}f} +/- {std:.{digits}f}"


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
