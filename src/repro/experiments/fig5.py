"""Figure 5: synthetic random-walk mobility, varying the number of users.

The paper generates user movement as a uniform random walk on the metro
graph (stay or move to a neighbor station, all equally likely), varies the
number of users from 40 to 1000, and compares online-approx against
offline-opt and online-greedy. Expected shape: online-approx stays ~1.1
regardless of the number of users, while online-greedy reaches up to ~1.8.
"""

from __future__ import annotations

from ..baselines import OfflineOptimal, OnlineGreedy
from ..core.regularization import OnlineRegularizedAllocator
from ..mobility.random_walk import RandomWalkMobility
from ..simulation.scenario import Scenario
from ..topology.metro import rome_metro_topology
from .runner import RatioPoint, ratio_table, run_ratio_sweep
from .settings import ExperimentScale, aggregation_config

#: The paper sweeps 40..1000 users; the default laptop scale trims the tail.
PAPER_USER_COUNTS = (40, 100, 200, 400, 600, 800, 1000)
DEFAULT_USER_COUNTS = (10, 20, 40)


def run_fig5(
    scale: ExperimentScale | None = None,
    *,
    user_counts: tuple[int, ...] = DEFAULT_USER_COUNTS,
    stay_bias: float = 0.0,
) -> list[RatioPoint]:
    """One RatioPoint per user count, random-walk mobility.

    ``stay_bias = 0`` is the paper's uniform walk (stay or move to any
    neighbor with equal probability). A positive bias makes users dwell for
    several slots (a metro hop takes more than one one-minute slot), which
    is the regime where greedy's myopia becomes expensive; the benchmark
    reports both series (see EXPERIMENTS.md).
    """
    scale = scale or ExperimentScale()
    topology = rome_metro_topology()
    mobility = RandomWalkMobility(topology, stay_bias=stay_bias)
    cases = [
        (
            f"users={num_users}",
            Scenario(
                topology=topology,
                mobility=mobility,
                num_users=num_users,
                num_slots=scale.num_slots,
                workload_distribution="power",
            ),
            [
                OfflineOptimal(),
                OnlineGreedy(),
                OnlineRegularizedAllocator(
                    eps1=scale.eps,
                    eps2=scale.eps,
                    aggregation=aggregation_config(scale),
                ),
            ],
            scale.seed + 1000 * k,
        )
        for k, num_users in enumerate(user_counts)
    ]
    return run_ratio_sweep(
        cases,
        repetitions=scale.repetitions,
        workers=scale.workers,
        keep_schedules=scale.keep_schedules,
        batch_solves=scale.batch_solves,
        use_shm=scale.use_shm,
    )


def fig5_report(points: list[RatioPoint]) -> str:
    """The Figure 5 table plus the stability headline."""
    lines = [
        "Figure 5 - random-walk mobility, varying number of users",
        ratio_table(points, axis_name="users"),
        "",
    ]
    approx = [p.mean_ratio("online-approx") for p in points]
    greedy = [p.mean_ratio("online-greedy") for p in points]
    lines.append(
        f"online-approx ratio range: [{min(approx):.3f}, {max(approx):.3f}] "
        "(paper: ~1.1, stable in the number of users)"
    )
    lines.append(
        f"online-greedy ratio range: [{min(greedy):.3f}, {max(greedy):.3f}] "
        "(paper: up to 1.8)"
    )
    return "\n".join(lines)
