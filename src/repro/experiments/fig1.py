"""The two worked examples of Section II-E (Figure 1).

Two edge clouds A and B, one user with one unit of workload, three time
slots. All four prices are 1 except the inter-cloud delay cost, and the
user pays a constant access delay of 1.5 per slot. The user starts attached
to A with its workload *already provisioned at A* (the example charges no
setup cost for the pre-existing placement).

* Example (a) — greedy is **too aggressive**: the user visits A, B, A and
  the inter-cloud delay cost is 2.1. Greedy migrates twice (total 11.5);
  keeping the workload at A costs only 9.6.
* Example (b) — greedy is **too conservative**: the user visits A, B, B and
  the inter-cloud delay cost is 1.9. Greedy never migrates (total 11.3);
  migrating to B in slot 2 costs only 9.5.

Because the placement is integral here, the offline optimum is found by
exhaustive search over single-cloud placements.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

#: Cloud labels for readability.
A, B = "A", "B"

#: Shared prices of both examples (Figure 1).
OPERATION_PRICE = 1.0
RECONFIG_PRICE = 1.0
MIGRATION_PRICE = 1.0  # combined both-end cost of moving the unit workload
ACCESS_DELAY = 1.5  # d(j, l_{j,t}) per slot, placement-independent


@dataclass(frozen=True)
class Fig1Example:
    """One of the two toy systems: a mobility path and a delay price."""

    name: str
    user_path: tuple[str, ...]
    inter_cloud_delay: float
    initial_placement: str = A

    def slot_cost(self, placement: str, attached: str, migrated: bool) -> float:
        """Cost of one slot: operation + service quality (+ dynamics if moved).

        ``migrated`` marks that the workload moved to ``placement`` at the
        start of this slot, charging migration + reconfiguration once.
        """
        cost = OPERATION_PRICE + ACCESS_DELAY
        if placement != attached:
            cost += self.inter_cloud_delay
        if migrated:
            cost += MIGRATION_PRICE + RECONFIG_PRICE
        return cost

    def total_cost(self, placements: tuple[str, ...]) -> float:
        """Total cost of a placement sequence (paper's arithmetic)."""
        if len(placements) != len(self.user_path):
            raise ValueError("placements must cover every slot")
        total = 0.0
        previous = self.initial_placement
        for placement, attached in zip(placements, self.user_path):
            total += self.slot_cost(placement, attached, migrated=placement != previous)
            previous = placement
        return total

    def greedy_placements(self) -> tuple[str, ...]:
        """The online-greedy trajectory: per-slot cheapest decision."""
        placements: list[str] = []
        previous = self.initial_placement
        for attached in self.user_path:
            best = min(
                (A, B),
                key=lambda p: self.slot_cost(p, attached, migrated=p != previous),
            )
            placements.append(best)
            previous = best
        return tuple(placements)

    def optimal_placements(self) -> tuple[str, ...]:
        """The offline optimum by exhaustive search (8 candidates)."""
        candidates = list(product((A, B), repeat=len(self.user_path)))
        return min(candidates, key=self.total_cost)


#: Example (a): greedy too aggressive (delay cost 2.1, path A-B-A).
EXAMPLE_A = Fig1Example(name="a", user_path=(A, B, A), inter_cloud_delay=2.1)
#: Example (b): greedy too conservative (delay cost 1.9, path A-B-B).
EXAMPLE_B = Fig1Example(name="b", user_path=(A, B, B), inter_cloud_delay=1.9)

#: The totals the paper reports for (greedy, optimal) in each example.
PAPER_TOTALS = {"a": (11.5, 9.6), "b": (11.3, 9.5)}


@dataclass(frozen=True)
class Fig1Result:
    """Greedy vs optimal on one example."""

    example: str
    greedy_placements: tuple[str, ...]
    greedy_cost: float
    optimal_placements: tuple[str, ...]
    optimal_cost: float

    @property
    def gap(self) -> float:
        """Relative excess cost of greedy over the optimum."""
        return self.greedy_cost / self.optimal_cost - 1.0


def run_example(example: Fig1Example) -> Fig1Result:
    """Evaluate greedy and the offline optimum on one Figure 1 example."""
    greedy = example.greedy_placements()
    optimal = example.optimal_placements()
    return Fig1Result(
        example=example.name,
        greedy_placements=greedy,
        greedy_cost=example.total_cost(greedy),
        optimal_placements=optimal,
        optimal_cost=example.total_cost(optimal),
    )


def run_fig1() -> dict[str, Fig1Result]:
    """Both examples, keyed by the paper's (a)/(b) labels."""
    return {ex.name: run_example(ex) for ex in (EXAMPLE_A, EXAMPLE_B)}
