"""EXT-MOBILITY: robustness to the mobility process (the title claim).

The paper's algorithm assumes *nothing* about user mobility — that is its
selling point against the Markov/stochastic-optimization line of related
work. This driver makes the claim measurable: the same scenario is run
under structurally different mobility processes (smooth taxi trips, the
uniform metro walk, a lazy Markov walk, and heavy-tailed Levy flights) and
the empirical ratios are compared. Expected shape: online-approx's ratio
stays in a narrow band across all of them.
"""

from __future__ import annotations

import numpy as np

from ..mobility.base import MobilityModel
from ..mobility.levy import LevyFlightMobility
from ..mobility.markov import MarkovMobility, lazy_random_walk_matrix
from ..mobility.random_walk import RandomWalkMobility
from ..mobility.taxi import TaxiMobility
from ..simulation.scenario import Scenario
from ..topology.metro import Topology, rome_metro_topology
from .runner import RatioPoint, run_ratio_point
from .settings import ExperimentScale, holistic_algorithms


def mobility_suite(topology: Topology) -> dict[str, MobilityModel]:
    """The four structurally different mobility processes."""
    adjacency = np.zeros((topology.num_sites, topology.num_sites))
    for a, b in topology.graph.edges:
        adjacency[a, b] = adjacency[b, a] = 1.0
    return {
        "taxi": TaxiMobility(topology, price_per_km=2.0),
        "uniform-walk": RandomWalkMobility(topology),
        "lazy-markov": MarkovMobility(
            lazy_random_walk_matrix(adjacency, stay_probability=0.75)
        ),
        "levy-flight": LevyFlightMobility(topology, price_per_km=2.0),
    }


def run_mobility_robustness(
    scale: ExperimentScale | None = None,
) -> list[RatioPoint]:
    """One RatioPoint per mobility model, same scale and algorithm roster."""
    scale = scale or ExperimentScale()
    topology = rome_metro_topology()
    points = []
    for k, (name, mobility) in enumerate(mobility_suite(topology).items()):
        scenario = Scenario(
            topology=topology,
            mobility=mobility,
            num_users=scale.num_users,
            num_slots=scale.num_slots,
            workload_distribution="power",
        )
        points.append(
            run_ratio_point(
                name,
                scenario,
                holistic_algorithms(scale.eps),
                repetitions=scale.repetitions,
                seed=scale.seed + 1000 * k,
            )
        )
    return points


def robustness_spread(points: list[RatioPoint], algorithm: str) -> float:
    """Max minus min of an algorithm's mean ratio across mobility models."""
    ratios = [p.mean_ratio(algorithm) for p in points]
    return max(ratios) - min(ratios)
