"""Shared experiment defaults (paper Section V-A) and the algorithm roster.

The paper's full scale is 15 edge clouds, roughly 300 users, 60 one-minute
slots per test case, 5 repetitions. The offline LP and the per-slot convex
programs are solved exactly at any scale, so the experiment drivers accept
``num_users``/``num_slots``/``repetitions`` overrides; the defaults here
are a laptop-friendly scale that preserves every qualitative effect (see
EXPERIMENTS.md for the committed numbers and their parameters).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import OfflineOptimal, OnlineGreedy, OperOpt, PerfOpt, StatOpt
from ..baselines.base import AllocationAlgorithm
from ..core.regularization import OnlineRegularizedAllocator

#: The paper's evaluation scale.
PAPER_NUM_CLOUDS = 15
PAPER_NUM_USERS = 300
PAPER_NUM_SLOTS = 60
PAPER_REPETITIONS = 5

#: Laptop-scale defaults used by the committed benchmarks.
DEFAULT_NUM_USERS = 24
DEFAULT_NUM_SLOTS = 12
DEFAULT_REPETITIONS = 3

#: Default regularization parameter (Figure 4 sweeps it over [1e-3, 1e3]).
DEFAULT_EPS = 1.0


@dataclass(frozen=True)
class ExperimentScale:
    """How big to run an experiment driver.

    ``workers`` controls how many processes the sweep fans its
    (point x repetition) grid cells across (1 = the original serial path,
    0/None = every visible CPU); the numbers are identical at any setting.
    ``keep_schedules=False`` drops per-slot allocations right after cost
    accounting — competitive ratios only need cost totals, so long-horizon
    sweeps can run with bounded memory.
    """

    num_users: int = DEFAULT_NUM_USERS
    num_slots: int = DEFAULT_NUM_SLOTS
    repetitions: int = DEFAULT_REPETITIONS
    seed: int = 2017
    eps: float = DEFAULT_EPS
    workers: int | None = 1
    keep_schedules: bool = True
    #: Solve online-approx over (station, workload-bucket) cohorts instead
    #: of per-user columns (docs/SCALING.md); baselines are unaffected.
    aggregate: bool = False
    lambda_buckets: int | None = 8
    shards: int = 1
    #: Stack concurrent cells' per-slot P2 solves into lockstep batched
    #: barrier iterations (docs/PERFORMANCE.md); results are bit-identical.
    batch_solves: bool = False
    #: Ship work to pool workers through a shared-memory arena instead of
    #: pickling, so dispatch cost stops scaling with instance size.
    use_shm: bool = False

    @classmethod
    def paper(cls) -> "ExperimentScale":
        """The paper's full evaluation scale (minutes-to-hours of runtime)."""
        return cls(
            num_users=PAPER_NUM_USERS,
            num_slots=PAPER_NUM_SLOTS,
            repetitions=PAPER_REPETITIONS,
        )


def aggregation_config(scale: ExperimentScale):
    """The scale's :class:`repro.aggregate.AggregationConfig`, or ``None``.

    Shard solves always run serially here (``workers=1``): the experiment
    drivers already fan their (point x repetition) grids across
    ``scale.workers`` processes, and process pools must not nest.
    """
    if not scale.aggregate:
        return None
    from ..aggregate.config import AggregationConfig

    return AggregationConfig(
        lambda_buckets=scale.lambda_buckets,
        shards=scale.shards,
        workers=1,
        batch_solves=scale.batch_solves,
    )


def holistic_algorithms(
    eps: float = DEFAULT_EPS, aggregation=None
) -> list[AllocationAlgorithm]:
    """offline-opt, online-greedy, online-approx (Section V-B, holistic group)."""
    return [
        OfflineOptimal(),
        OnlineGreedy(),
        OnlineRegularizedAllocator(eps1=eps, eps2=eps, aggregation=aggregation),
    ]


def atomistic_algorithms() -> list[AllocationAlgorithm]:
    """perf-opt, oper-opt, stat-opt (Section V-B, atomistic group)."""
    return [PerfOpt(), OperOpt(), StatOpt()]


def all_paper_algorithms(
    eps: float = DEFAULT_EPS, aggregation=None
) -> list[AllocationAlgorithm]:
    """Both groups, as compared in Figure 2."""
    return atomistic_algorithms() + holistic_algorithms(eps, aggregation)
