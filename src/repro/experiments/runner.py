"""Generic competitive-ratio experiment runner shared by Figures 2-5.

Each figure is a sweep over some axis (test case, workload distribution,
epsilon, mu, user count); every point runs the algorithm roster on several
seeded repetitions of a scenario and aggregates the empirical competitive
ratios (mean +/- std over repetitions, as the paper plots them).

The (point x repetition) grid cells are independent, so the whole sweep
fans out through :class:`repro.parallel.SweepExecutor`; ``workers=1`` (the
default) preserves the original strictly serial execution and, by the
executor's determinism contract, any worker count produces identical
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..baselines.base import AllocationAlgorithm
from ..parallel import SweepCell, SweepExecutor, comparisons_or_raise
from ..simulation.results import Comparison, aggregate_ratios
from ..simulation.scenario import Scenario
from .report import format_mean_std, format_table


@dataclass(frozen=True)
class RatioPoint:
    """Aggregated ratios at one sweep point.

    Attributes:
        label: the sweep-axis value ("hour 3pm", "eps=0.1", "users=100", ...).
        stats: algorithm name -> (mean ratio, std over repetitions).
        comparisons: the raw per-repetition comparisons.
    """

    label: str
    stats: dict[str, tuple[float, float]]
    comparisons: list[Comparison]

    def mean_ratio(self, algorithm: str) -> float:
        """Mean empirical ratio of one algorithm at this point."""
        return self.stats[algorithm][0]


#: One sweep point's specification: (label, scenario, algorithm roster,
#: base seed). Repetition ``rep`` of a point runs on ``seed + rep``.
SweepCase = tuple[str, Scenario, Sequence[AllocationAlgorithm], int]


def run_ratio_sweep(
    cases: Sequence[SweepCase],
    *,
    repetitions: int,
    workers: int | None = 1,
    keep_schedules: bool = True,
    batch_solves: bool = False,
    use_shm: bool = False,
) -> list[RatioPoint]:
    """Run a whole sweep grid, optionally in parallel.

    Every (case, repetition) pair becomes one executor cell with its own
    deterministic seed, so the grid parallelizes across points *and*
    repetitions while staying bit-for-bit reproducible at any worker count.

    Args:
        cases: the sweep points (label, scenario, algorithms, base seed).
        repetitions: seeded repetitions per point.
        workers: executor processes (1 = serial, None = all CPUs).
        keep_schedules: ``False`` drops each run's per-slot allocations
            after cost accounting (ratios only need the totals), bounding
            memory on long horizons.
        batch_solves: run the cells' per-slot P2 solves as stacked batches
            (:mod:`repro.simulation.batched`); results stay bit-identical.
        use_shm: ship work to pool workers through the shared-memory arena
            transport instead of pickling (:mod:`repro.parallel.shm`).

    Returns:
        One aggregated :class:`RatioPoint` per case, in case order.
    """
    cells = [
        SweepCell(
            key=(index, rep),
            scenario=scenario,
            algorithms=tuple(algorithms),
            seed=seed + rep,
            keep_schedule=keep_schedules,
        )
        for index, (_, scenario, algorithms, seed) in enumerate(cases)
        for rep in range(repetitions)
    ]
    if batch_solves:
        from ..simulation.batched import run_cells_batched

        results = run_cells_batched(cells, workers=workers, use_shm=use_shm)
    else:
        results = SweepExecutor(max_workers=workers, use_shm=use_shm).run_cells(
            cells
        )
    comparisons = comparisons_or_raise(results)
    points = []
    for index, (label, _, _, _) in enumerate(cases):
        # Cells were emitted case-major, so each case's repetitions are a
        # contiguous, ordered block.
        block = comparisons[index * repetitions : (index + 1) * repetitions]
        points.append(
            RatioPoint(label=label, stats=aggregate_ratios(block), comparisons=block)
        )
    return points


def run_ratio_point(
    label: str,
    scenario: Scenario,
    algorithms: list[AllocationAlgorithm],
    *,
    repetitions: int,
    seed: int,
    workers: int | None = 1,
    keep_schedules: bool = True,
    batch_solves: bool = False,
    use_shm: bool = False,
) -> RatioPoint:
    """Run ``repetitions`` seeded instances of a scenario and aggregate."""
    (point,) = run_ratio_sweep(
        [(label, scenario, algorithms, seed)],
        repetitions=repetitions,
        workers=workers,
        keep_schedules=keep_schedules,
        batch_solves=batch_solves,
        use_shm=use_shm,
    )
    return point


def ratio_table(points: list[RatioPoint], *, axis_name: str = "case") -> str:
    """Paper-style table: one row per sweep point, one column per algorithm."""
    if not points:
        return "(no data)"
    algorithms = [name for name in points[0].stats if name != "offline-opt"]
    headers = [axis_name, *algorithms]
    rows = []
    for point in points:
        rows.append(
            [point.label]
            + [format_mean_std(*point.stats[name]) for name in algorithms]
        )
    return format_table(headers, rows)
