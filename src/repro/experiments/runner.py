"""Generic competitive-ratio experiment runner shared by Figures 2-5.

Each figure is a sweep over some axis (test case, workload distribution,
epsilon, mu, user count); every point runs the algorithm roster on several
seeded repetitions of a scenario and aggregates the empirical competitive
ratios (mean +/- std over repetitions, as the paper plots them).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.base import AllocationAlgorithm
from ..simulation.engine import compare_algorithms
from ..simulation.results import Comparison, aggregate_ratios
from ..simulation.scenario import Scenario
from .report import format_mean_std, format_table


@dataclass(frozen=True)
class RatioPoint:
    """Aggregated ratios at one sweep point.

    Attributes:
        label: the sweep-axis value ("hour 3pm", "eps=0.1", "users=100", ...).
        stats: algorithm name -> (mean ratio, std over repetitions).
        comparisons: the raw per-repetition comparisons.
    """

    label: str
    stats: dict[str, tuple[float, float]]
    comparisons: list[Comparison]

    def mean_ratio(self, algorithm: str) -> float:
        """Mean empirical ratio of one algorithm at this point."""
        return self.stats[algorithm][0]


def run_ratio_point(
    label: str,
    scenario: Scenario,
    algorithms: list[AllocationAlgorithm],
    *,
    repetitions: int,
    seed: int,
) -> RatioPoint:
    """Run ``repetitions`` seeded instances of a scenario and aggregate."""
    comparisons = [
        compare_algorithms(algorithms, scenario.build(seed=seed + rep))
        for rep in range(repetitions)
    ]
    return RatioPoint(
        label=label, stats=aggregate_ratios(comparisons), comparisons=comparisons
    )


def ratio_table(points: list[RatioPoint], *, axis_name: str = "case") -> str:
    """Paper-style table: one row per sweep point, one column per algorithm."""
    if not points:
        return "(no data)"
    algorithms = [name for name in points[0].stats if name != "offline-opt"]
    headers = [axis_name, *algorithms]
    rows = []
    for point in points:
        rows.append(
            [point.label]
            + [format_mean_std(*point.stats[name]) for name in algorithms]
        )
    return format_table(headers, rows)
