"""Figure 2: empirical competitive ratios on taxi mobility, power workloads.

The paper selects six hours (3pm-8pm, Feb 12 2014) of the Rome taxi traces
as six independent test cases of 60 one-minute slots, runs every algorithm
five times, and normalizes by offline-opt. Our substitute taxi generator
(DESIGN.md, "Substitutions") provides the trace; each "hour" is an
independent seeded draw of the same scenario, mirroring the paper's
independent test cases.

Expected shape: atomistic algorithms (perf-opt / oper-opt / stat-opt) are
clearly worst, online-greedy in between, online-approx near-optimal
(ratio ~ 1.1). The atomistic rows double as the paper's "up to 4x vs
static approaches" claim.
"""

from __future__ import annotations

from ..simulation.scenario import Scenario
from .runner import RatioPoint, ratio_table, run_ratio_sweep
from .settings import ExperimentScale, aggregation_config, all_paper_algorithms

#: The six hourly test cases of the paper.
HOURS = ("3pm", "4pm", "5pm", "6pm", "7pm", "8pm")


def fig2_scenario(scale: ExperimentScale) -> Scenario:
    """The Figure 2 scenario: Rome metro topology, taxi mobility, power workload."""
    return Scenario(
        num_users=scale.num_users,
        num_slots=scale.num_slots,
        workload_distribution="power",
    )


def run_fig2(
    scale: ExperimentScale | None = None, *, hours: tuple[str, ...] = HOURS
) -> list[RatioPoint]:
    """One RatioPoint per hourly test case (independent seeded draws)."""
    scale = scale or ExperimentScale()
    scenario = fig2_scenario(scale)
    algorithms = all_paper_algorithms(scale.eps, aggregation_config(scale))
    cases = [
        (hour, scenario, algorithms, scale.seed + 1000 * case)
        for case, hour in enumerate(hours)
    ]
    return run_ratio_sweep(
        cases,
        repetitions=scale.repetitions,
        workers=scale.workers,
        keep_schedules=scale.keep_schedules,
        batch_solves=scale.batch_solves,
        use_shm=scale.use_shm,
    )


def run_fig2_continuous_day(
    scale: ExperimentScale | None = None, *, hours: tuple[str, ...] = HOURS
) -> list[RatioPoint]:
    """Figure 2 the paper's way: slice one continuous day into hourly cases.

    The paper takes six *consecutive* hours (3pm-8pm of Feb 12, 2014) from
    one day of taxi traces, so the hourly test cases share the same taxis,
    prices generator, and capacity plan. This variant builds one long
    instance spanning all the hours (capacities provisioned from the whole
    day's attachment frequencies, as in Section V-A) and evaluates each
    hour as an independent test case via slicing.
    """
    from ..simulation.engine import compare_algorithms
    from ..simulation.results import aggregate_ratios
    from .runner import RatioPoint

    scale = scale or ExperimentScale()
    scenario = fig2_scenario(scale)
    algorithms = all_paper_algorithms(scale.eps, aggregation_config(scale))
    points: list[RatioPoint] = []
    per_hour_comparisons: list[list] = [[] for _ in hours]
    for rep in range(scale.repetitions):
        day_scenario = Scenario(
            num_users=scale.num_users,
            num_slots=scale.num_slots * len(hours),
            workload_distribution=scenario.workload_distribution,
        )
        day = day_scenario.build(seed=scale.seed + rep)
        for case in range(len(hours)):
            hour_instance = day.slice_slots(
                case * scale.num_slots, (case + 1) * scale.num_slots
            )
            per_hour_comparisons[case].append(
                compare_algorithms(algorithms, hour_instance)
            )
    for case, hour in enumerate(hours):
        comparisons = per_hour_comparisons[case]
        points.append(
            RatioPoint(
                label=hour,
                stats=aggregate_ratios(comparisons),
                comparisons=comparisons,
            )
        )
    return points


def fig2_report(points: list[RatioPoint]) -> str:
    """The Figure 2 table plus the headline claims it supports."""
    lines = [
        "Figure 2 - empirical competitive ratio (taxi mobility, power workload)",
        ratio_table(points, axis_name="hour"),
        "",
    ]
    approx = [p.mean_ratio("online-approx") for p in points]
    greedy = [p.mean_ratio("online-greedy") for p in points]
    atomistic_worst = [
        max(p.mean_ratio(a) for a in ("perf-opt", "oper-opt", "stat-opt"))
        for p in points
    ]
    lines.append(f"online-approx ratio: mean {sum(approx)/len(approx):.3f}, "
                 f"max {max(approx):.3f} (paper: ~1.1)")
    improvement = max(
        (g - a) / g for g, a in zip(greedy, approx)
    )
    lines.append(
        f"best improvement over online-greedy: {100 * improvement:.1f}% "
        "(paper: up to 60%)"
    )
    static_factor = max(w / a for w, a in zip(atomistic_worst, approx))
    lines.append(
        f"worst atomistic/static cost vs online-approx: {static_factor:.2f}x "
        "(paper: up to 4x)"
    )
    return "\n".join(lines)
