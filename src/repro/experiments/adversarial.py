"""Adversarial instance families (the paper's "lower bounds" future work).

The Remark after Theorem 2 leaves lower bounds on the competitive ratio as
future work. These generators build the structured worst cases that drive
online algorithms to their limits, letting the harness *measure* empirical
lower bounds:

* :func:`oscillating_price_instance` — two clouds whose operation prices
  swap every ``period`` slots with amplitude A. The one-slot gain from
  chasing the cheap cloud is A·λ; the cost of moving is (b + c)·λ. Greedy's
  decision flips discontinuously at A ≈ b + c (too conservative below, too
  aggressive at/above when the price keeps flipping), while the regularized
  algorithm hedges fractionally across the threshold.

* :func:`ping_pong_mobility_instance` — one user bouncing between two
  stations every ``dwell`` slots with delay cost d: the mobility version of
  the same trap (the paper's Figure 1 example (a), generalized).

Both families are deterministic — no randomness, so measured ratios are
exact properties of the algorithms.
"""

from __future__ import annotations

import numpy as np

from ..core.problem import CostWeights, ProblemInstance
from ..pricing.bandwidth import MigrationPrices


def oscillating_price_instance(
    *,
    num_slots: int = 24,
    amplitude: float = 1.0,
    period: int = 2,
    base_price: float = 1.0,
    migration_price: float = 1.0,
    reconfig_price: float = 1.0,
    inter_cloud_delay: float = 0.1,
    weights: CostWeights | None = None,
) -> ProblemInstance:
    """Two clouds, one unit-workload user, operation prices that swap sides.

    Cloud 0 costs ``base + amplitude`` during odd phases and ``base`` during
    even phases; cloud 1 mirrors it. The user stays attached to cloud 0
    (mobility plays no role here). ``period`` slots pass between swaps.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be positive")
    if period < 1:
        raise ValueError("period must be positive")
    if amplitude < 0:
        raise ValueError("amplitude must be nonnegative")
    phase = (np.arange(num_slots) // period) % 2
    op_prices = np.empty((num_slots, 2))
    op_prices[:, 0] = base_price + amplitude * phase
    op_prices[:, 1] = base_price + amplitude * (1 - phase)
    return ProblemInstance(
        workloads=np.array([1.0]),
        capacities=np.array([2.0, 2.0]),
        op_prices=op_prices,
        reconfig_prices=np.full(2, reconfig_price),
        migration_prices=MigrationPrices(
            out=np.full(2, migration_price / 2.0),
            into=np.full(2, migration_price / 2.0),
        ),
        inter_cloud_delay=np.array(
            [[0.0, inter_cloud_delay], [inter_cloud_delay, 0.0]]
        ),
        attachment=np.zeros((num_slots, 1), dtype=np.int64),
        access_delay=np.zeros((num_slots, 1)),
        weights=weights or CostWeights(),
    )


def ping_pong_mobility_instance(
    *,
    num_slots: int = 24,
    delay_cost: float = 2.0,
    dwell: int = 1,
    op_price: float = 1.0,
    migration_price: float = 1.0,
    reconfig_price: float = 1.0,
    weights: CostWeights | None = None,
) -> ProblemInstance:
    """One user bouncing between two stations every ``dwell`` slots.

    Serving the user from the far cloud costs ``delay_cost`` per slot;
    following it costs ``migration_price + reconfig_price`` per move. This
    generalizes the paper's Figure 1(a): at ``delay_cost`` slightly above
    the moving cost with ``dwell = 1``, chasing is a pure loss.
    """
    if num_slots < 1:
        raise ValueError("num_slots must be positive")
    if dwell < 1:
        raise ValueError("dwell must be positive")
    attachment = ((np.arange(num_slots) // dwell) % 2).astype(np.int64)
    return ProblemInstance(
        workloads=np.array([1.0]),
        capacities=np.array([2.0, 2.0]),
        op_prices=np.full((num_slots, 2), op_price),
        reconfig_prices=np.full(2, reconfig_price),
        migration_prices=MigrationPrices(
            out=np.full(2, migration_price / 2.0),
            into=np.full(2, migration_price / 2.0),
        ),
        inter_cloud_delay=np.array([[0.0, delay_cost], [delay_cost, 0.0]]),
        attachment=attachment[:, None],
        access_delay=np.zeros((num_slots, 1)),
        weights=weights or CostWeights(),
    )


def run_threshold_sweep(
    amplitudes: tuple[float, ...] = (1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0),
    *,
    num_slots: int = 24,
    period: int = 1,
) -> dict[float, dict[str, float]]:
    """Ratios of greedy and online-approx across the chase/stay threshold.

    With migration + reconfiguration cost 2.0 per unit and prices flipping
    every slot (period 1), chasing gains A per slot but costs 2 per slot,
    while staying costs A/2 per slot on average. Greedy chases as soon as
    A > 2; parking is better until A > 4 — so on A in (2, 4) greedy flaps
    at a pure loss. The regularized algorithm hedges fractionally and
    crosses the region smoothly.

    Returns:
        amplitude -> {algorithm name -> empirical competitive ratio}.
    """
    from ..baselines import OfflineOptimal, OnlineGreedy
    from ..core.costs import total_cost
    from ..core.regularization import OnlineRegularizedAllocator

    sweep: dict[float, dict[str, float]] = {}
    for amplitude in amplitudes:
        instance = oscillating_price_instance(
            num_slots=num_slots, amplitude=amplitude, period=period
        )
        offline = total_cost(OfflineOptimal().run(instance), instance)
        ratios = {}
        for algorithm in (OnlineGreedy(), OnlineRegularizedAllocator()):
            ratios[algorithm.name] = (
                total_cost(algorithm.run(instance), instance) / offline
            )
        sweep[amplitude] = ratios
    return sweep
