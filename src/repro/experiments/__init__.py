"""Experiment drivers regenerating every table and figure of the paper."""

from .adversarial import (
    oscillating_price_instance,
    ping_pong_mobility_instance,
    run_threshold_sweep,
)
from .capacity import OVERPROVISION_FACTORS, run_capacity_sweep
from .fig1 import EXAMPLE_A, EXAMPLE_B, Fig1Example, Fig1Result, run_example, run_fig1
from .fig2 import fig2_report, fig2_scenario, run_fig2, run_fig2_continuous_day
from .fig3 import fig3_report, run_fig3
from .fig4 import fig4_report, run_eps_sweep, run_mu_sweep, theoretical_bounds
from .fig5 import fig5_report, run_fig5
from .report import format_mean_std, format_table
from .robustness import mobility_suite, robustness_spread, run_mobility_robustness
from .runner import RatioPoint, ratio_table, run_ratio_point, run_ratio_sweep
from .settings import (
    ExperimentScale,
    aggregation_config,
    all_paper_algorithms,
    atomistic_algorithms,
    holistic_algorithms,
)

__all__ = [
    "EXAMPLE_A",
    "EXAMPLE_B",
    "ExperimentScale",
    "Fig1Example",
    "Fig1Result",
    "OVERPROVISION_FACTORS",
    "RatioPoint",
    "aggregation_config",
    "all_paper_algorithms",
    "atomistic_algorithms",
    "fig2_report",
    "fig2_scenario",
    "fig3_report",
    "fig4_report",
    "fig5_report",
    "format_mean_std",
    "format_table",
    "holistic_algorithms",
    "oscillating_price_instance",
    "ping_pong_mobility_instance",
    "mobility_suite",
    "ratio_table",
    "robustness_spread",
    "run_mobility_robustness",
    "run_threshold_sweep",
    "run_eps_sweep",
    "run_example",
    "run_fig1",
    "run_capacity_sweep",
    "run_fig2",
    "run_fig2_continuous_day",
    "run_fig3",
    "run_fig5",
    "run_mu_sweep",
    "run_ratio_point",
    "run_ratio_sweep",
    "theoretical_bounds",
]
