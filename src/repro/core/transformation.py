"""The gap-preserving transformation P0 -> P1 (paper Section III-A, Lemma 1).

P0 charges migration bidirectionally (b_i^out on the source, b_i^in on the
destination). P1 replaces this with a single *inbound* charge at the
combined price b_i = b_i^out + b_i^in. Lemma 1 shows the two objectives
differ by at most the constant sigma = Sum_i b_i^out C_i, so any
r-competitive algorithm for P1 is r-competitive for P0 (up to r*sigma).
"""

from __future__ import annotations

import numpy as np

from .allocation import AllocationSchedule
from .costs import (
    cost_breakdown,
    migration_volumes,
    operation_cost,
    positive_part,
    reconfiguration_cost,
    service_quality_cost,
)
from .problem import ProblemInstance


def combined_migration_prices(instance: ProblemInstance) -> np.ndarray:
    """b_i = b_i^out + b_i^in (the P1 migration price)."""
    return np.asarray(instance.migration_prices.combined, dtype=float)


def transformation_constant(instance: ProblemInstance) -> float:
    """sigma = Sum_i b_i^out C_i from Lemma 1.

    The additive slack between the P0 and P1 objectives (in unweighted
    migration-cost units).
    """
    return float(
        np.asarray(instance.migration_prices.out, dtype=float)
        @ np.asarray(instance.capacities, dtype=float)
    )


def p1_migration_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> np.ndarray:
    """Per-slot P1 migration cost: Sum_i b_i z_{i,t}^in."""
    _, z_in = migration_volumes(schedule)
    return z_in @ combined_migration_prices(instance)


def p1_objective(schedule: AllocationSchedule, instance: ProblemInstance) -> float:
    """The P1 objective: static costs + reconfiguration + inbound-only migration.

    Weighted exactly like P0: static weight on (op + sq), dynamic weight on
    (rc + combined-price inbound migration).
    """
    static = operation_cost(schedule, instance) + service_quality_cost(schedule, instance)
    dynamic = reconfiguration_cost(schedule, instance) + p1_migration_cost(schedule, instance)
    return float(
        instance.weights.static * static.sum() + instance.weights.dynamic * dynamic.sum()
    )


def p0_objective(schedule: AllocationSchedule, instance: ProblemInstance) -> float:
    """The original P0 objective (same as :func:`repro.core.costs.total_cost`)."""
    return cost_breakdown(schedule, instance).total


def per_user_inbound_migration(schedule: AllocationSchedule) -> np.ndarray:
    """z_{i,j,t} = (x_{i,j,t} - x_{i,j,t-1})+ (paper eq. 9), shape (T, I, J)."""
    x, prev = schedule.with_previous()
    return positive_part(x - prev)


def lemma1_gap(schedule: AllocationSchedule, instance: ProblemInstance) -> float:
    """P0(x) - [P1(x) - w_d * sigma]; Lemma 1 guarantees this is >= 0.

    Useful in tests: for *any* schedule, P1 <= P0 + w_d*sigma, i.e. the
    returned value is nonnegative (up to numerical noise).
    """
    sigma = transformation_constant(instance)
    return (
        p0_objective(schedule, instance)
        - p1_objective(schedule, instance)
        + instance.weights.dynamic * sigma
    )
