"""The theoretical competitive guarantee (paper Section IV, Theorem 2).

Theorem 2: solving P2 optimally per slot is r-competitive for P0 with

    r = 1 + gamma * |I|,
    gamma = max_i { (C_i + eps1) ln(1 + C_i/eps1), (C_i + eps2) ln(1 + C_i/eps2) }.

The paper's Remark observes r is monotonically decreasing in eps1 and eps2,
so the bound can be improved by tuning them (the empirical sweep is
Figure 4). This module evaluates the bound and provides the tuning helper.
"""

from __future__ import annotations

import numpy as np

from .problem import ProblemInstance


def eta(capacities: np.ndarray, eps1: float) -> np.ndarray:
    """eta_i = ln(1 + C_i / eps1), the reconfiguration regularizer scale."""
    if eps1 <= 0:
        raise ValueError("eps1 must be positive")
    return np.log1p(np.asarray(capacities, dtype=float) / eps1)


def tau(workloads: np.ndarray, eps2: float | np.ndarray) -> np.ndarray:
    """tau_{i,j} = ln(1 + lambda_j / eps2), the migration regularizer scale.

    The paper's tau depends only on j, so this returns a (J,) array.

    ``eps2`` may be a (J,) vector (a per-column regularization). The
    aggregation layer (:mod:`repro.aggregate`) uses this: a cohort column
    standing for ``n`` users carries ``n * eps2``, so that
    ``tau(Lambda_g, n_g * eps2) = ln(1 + mean_workload_g / eps2)`` — the
    per-user tau at the cohort's mean workload.
    """
    eps2 = np.asarray(eps2, dtype=float)
    if np.any(eps2 <= 0):
        raise ValueError("eps2 must be positive")
    return np.log1p(np.asarray(workloads, dtype=float) / eps2)


def gamma(capacities: np.ndarray, eps1: float, eps2: float) -> float:
    """The gamma constant of Lemma 6."""
    capacities = np.asarray(capacities, dtype=float)
    if eps1 <= 0 or eps2 <= 0:
        raise ValueError("eps1 and eps2 must be positive")
    term1 = (capacities + eps1) * np.log1p(capacities / eps1)
    term2 = (capacities + eps2) * np.log1p(capacities / eps2)
    return float(max(term1.max(), term2.max()))


def competitive_ratio_bound(
    instance: ProblemInstance, eps1: float, eps2: float
) -> float:
    """Theorem 2's parameterized ratio r = 1 + gamma * |I|."""
    return 1.0 + gamma(np.asarray(instance.capacities), eps1, eps2) * instance.num_clouds


def ratio_bound_curve(
    instance: ProblemInstance, eps_values: np.ndarray
) -> np.ndarray:
    """r(eps) with eps1 = eps2 = eps, for each eps in ``eps_values``.

    This is the theoretical companion of Figure 4's empirical eps sweep; the
    Remark after Theorem 2 predicts a monotonically decreasing curve.
    """
    eps_values = np.asarray(eps_values, dtype=float)
    return np.array(
        [competitive_ratio_bound(instance, float(e), float(e)) for e in eps_values]
    )


def suggest_epsilon(instance: ProblemInstance, *, fraction: float = 0.05) -> float:
    """A practical default for eps1 = eps2.

    The regularizer behaves like a smoothed (x)+ with smoothing width ~eps;
    a small fraction of the mean per-cloud load keeps the subproblem
    well-conditioned without drowning the dynamic prices. This matches the
    "dip" region of the paper's Figure 4 sweep.
    """
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    mean_load = instance.total_workload / instance.num_clouds
    return max(1e-6, fraction * mean_load)
