"""The competitive analysis as executable code (paper Section IV).

The proof of Theorem 2 rests on the chain of inequalities (eq. 12):

    P1  >=  P3  >=  D,

where P3 linearizes P1's (.)+ terms with auxiliary variables ``u, v >= 0``
(exact at any optimum, since their prices are nonnegative) and *relaxes*
the capacity constraint to the complement form (13c) with the positive
part on the right-hand side — every P1-feasible point is P3-feasible with
equal objective, hence P3* <= P1(x) for any feasible x. D is the Lagrange
dual (14) of P3 with variables alpha (14b: <= c_i), beta (14c: <= b_i),
rho and theta; the box constraints (14b)/(14c) come precisely from
``u, v >= 0``.

This module builds and solves both programs with HiGHS, so for any
instance the chain can be *numerically certified* rather than trusted:

    certificate = duality_certificate(instance, schedule)
    assert certificate.chain_holds

All objective values exclude the allocation-independent access-delay
constant (it cancels throughout the analysis); prices carry the instance's
static/dynamic weights exactly as in the rest of the project.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..solvers.linear import LinearProgramBuilder
from .allocation import AllocationSchedule
from .costs import (
    operation_cost,
    reconfiguration_cost,
    service_quality_cost,
)
from .problem import ProblemInstance
from .transformation import combined_migration_prices, p1_migration_cost


def p1_value(schedule: AllocationSchedule, instance: ProblemInstance) -> float:
    """P1 objective of a schedule, without the access-delay constant."""
    weights = instance.weights
    static = (
        operation_cost(schedule, instance).sum()
        + service_quality_cost(schedule, instance).sum()
        - instance.access_delay_constant()
    )
    dynamic = (
        reconfiguration_cost(schedule, instance).sum()
        + p1_migration_cost(schedule, instance).sum()
    )
    return float(weights.static * static + weights.dynamic * dynamic)


def solve_p3(instance: ProblemInstance) -> tuple[AllocationSchedule, float]:
    """Solve the relaxed program P3 (eq. 13); returns (x part, optimum).

    The linearization (u, v with nonnegative prices) is exact; the
    relaxation is the complement-form capacity (13c), which every
    P1-feasible point satisfies. Hence ``P3* <= P1(x)`` for any feasible x.
    """
    num_slots = instance.num_slots
    num_clouds = instance.num_clouds
    num_users = instance.num_users
    w_dyn = instance.weights.dynamic
    workloads = np.asarray(instance.workloads, dtype=float)
    capacities = np.asarray(instance.capacities, dtype=float)
    total_workload = float(workloads.sum())
    reconfig = np.asarray(instance.reconfig_prices, dtype=float)
    combined = combined_migration_prices(instance)

    builder = LinearProgramBuilder()
    x = builder.add_block("x", num_slots, num_clouds, num_users)
    u = builder.add_block("u", num_slots, num_clouds)
    v = builder.add_block("v", num_slots, num_clouds, num_users)
    x_idx, u_idx, v_idx = x.indices(), u.indices(), v.indices()
    # u, v >= 0 (13d): the builder's default nonnegativity.

    ones_block = np.ones((num_clouds, num_users))
    for t in range(num_slots):
        builder.set_cost(x_idx[t], instance.weights.static * instance.static_prices(t))
        builder.set_cost(u_idx[t], w_dyn * reconfig)
        builder.set_cost(
            v_idx[t],
            w_dyn * np.broadcast_to(combined[:, None], (num_clouds, num_users)),
        )
        # (6a) demand.
        builder.add_ge_rows(x_idx[t].T, 1.0, workloads)
        # (13c) complement capacity with the positive part on the rhs.
        rhs = np.maximum(total_workload - capacities, 0.0)
        columns = np.empty((num_clouds, (num_clouds - 1) * num_users), dtype=int)
        for i in range(num_clouds):
            others = np.concatenate(
                [x_idx[t, k, :] for k in range(num_clouds) if k != i]
            )
            columns[i] = others
        builder.add_ge_rows(columns, 1.0, rhs)
        # (13a) u_{i,t} >= sum_j x_{i,j,t} - sum_j x_{i,j,t-1}.
        if t == 0:
            builder.add_le_rows(
                np.concatenate([x_idx[t], u_idx[t][:, None]], axis=1),
                np.concatenate([ones_block, -np.ones((num_clouds, 1))], axis=1),
                np.zeros(num_clouds),
            )
            builder.add_le_rows(
                np.stack([x_idx[t].ravel(), v_idx[t].ravel()], axis=1),
                np.array([1.0, -1.0]),
                np.zeros(num_clouds * num_users),
            )
        else:
            builder.add_le_rows(
                np.concatenate([x_idx[t], x_idx[t - 1], u_idx[t][:, None]], axis=1),
                np.concatenate(
                    [ones_block, -ones_block, -np.ones((num_clouds, 1))], axis=1
                ),
                np.zeros(num_clouds),
            )
            # (13b) v_{i,j,t} >= x_{i,j,t} - x_{i,j,t-1}.
            builder.add_le_rows(
                np.stack(
                    [x_idx[t].ravel(), x_idx[t - 1].ravel(), v_idx[t].ravel()], axis=1
                ),
                np.array([1.0, -1.0, -1.0]),
                np.zeros(num_clouds * num_users),
            )
    result = builder.solve()
    x_opt = result.x[x_idx].reshape(num_slots, num_clouds, num_users)
    return AllocationSchedule(x_opt), float(result.objective)


def solve_dual(instance: ProblemInstance) -> float:
    """Solve the dual program D (eq. 14); returns its optimum.

    By weak duality, ``D* <= P3*``; with LP strong duality the two are
    equal (a useful numerical cross-check of both constructions).
    """
    num_slots = instance.num_slots
    num_clouds = instance.num_clouds
    num_users = instance.num_users
    workloads = np.asarray(instance.workloads, dtype=float)
    capacities = np.asarray(instance.capacities, dtype=float)
    total_workload = float(workloads.sum())
    w_dyn = instance.weights.dynamic
    reconfig = w_dyn * np.asarray(instance.reconfig_prices, dtype=float)
    combined = w_dyn * combined_migration_prices(instance)

    builder = LinearProgramBuilder()
    alpha = builder.add_block("alpha", num_slots, num_clouds)
    beta = builder.add_block("beta", num_slots, num_clouds, num_users)
    rho = builder.add_block("rho", num_slots, num_clouds)
    theta = builder.add_block("theta", num_slots, num_users)
    a_idx, b_idx = alpha.indices(), beta.indices()
    r_idx, t_idx = rho.indices(), theta.indices()

    # Maximize  sum lambda_j theta + sum (Lambda - C_i)+ rho  ==  minimize -(...).
    surplus = np.maximum(total_workload - capacities, 0.0)
    for t in range(num_slots):
        builder.set_cost(t_idx[t], -workloads)
        builder.set_cost(r_idx[t], -surplus)
    # (14b), (14c): box constraints.
    builder.set_upper_bound(a_idx, np.broadcast_to(reconfig, (num_slots, num_clouds)))
    builder.set_upper_bound(
        b_idx,
        np.broadcast_to(combined[None, :, None], (num_slots, num_clouds, num_users)),
    )

    # (14a), one row per (t, i, j):
    #   -p_{i,j,t} + alpha_{t+1} - alpha_t + beta_{t+1} - beta_t
    #   + sum_{k != i} rho_{k,t} + theta_{j,t} <= 0,
    # with alpha_{T+1} = beta_{T+1} = 0 (no variables beyond the horizon).
    for t in range(num_slots):
        prices = instance.weights.static * instance.static_prices(t)  # (I, J)
        has_next = t + 1 < num_slots
        width = (2 if has_next else 1) * 2 + (num_clouds - 1) + 1
        columns = np.empty((num_clouds * num_users, width), dtype=int)
        coefficients = np.empty((num_clouds * num_users, width))
        row = 0
        for i in range(num_clouds):
            other_rho = np.array(
                [r_idx[t, k] for k in range(num_clouds) if k != i], dtype=int
            )
            for j in range(num_users):
                entries = [(a_idx[t, i], -1.0), (b_idx[t, i, j], -1.0)]
                if has_next:
                    entries += [
                        (a_idx[t + 1, i], 1.0),
                        (b_idx[t + 1, i, j], 1.0),
                    ]
                entries += [(int(k), 1.0) for k in other_rho]
                entries += [(t_idx[t, j], 1.0)]
                columns[row] = [e[0] for e in entries]
                coefficients[row] = [e[1] for e in entries]
                row += 1
        builder.add_le_rows(columns, coefficients, prices.ravel())
    result = builder.solve()
    return float(-result.objective)


@dataclass(frozen=True)
class DualityCertificate:
    """Numerical certificate of the paper's inequality chain (eq. 12)."""

    p1: float
    p3: float
    dual: float
    tolerance: float

    @property
    def chain_holds(self) -> bool:
        """P1 >= P3 >= D up to the (relative) tolerance."""
        scale = max(1.0, abs(self.p1), abs(self.p3), abs(self.dual))
        slack = self.tolerance * scale
        return self.p1 >= self.p3 - slack and self.p3 >= self.dual - slack

    @property
    def lp_duality_gap(self) -> float:
        """P3* - D*: zero (strong duality) up to solver tolerance."""
        return self.p3 - self.dual


def duality_certificate(
    instance: ProblemInstance,
    schedule: AllocationSchedule,
    *,
    tolerance: float = 1e-6,
) -> DualityCertificate:
    """Certify P1(schedule) >= P3* >= D* on a concrete instance."""
    _, p3_opt = solve_p3(instance)
    dual_opt = solve_dual(instance)
    return DualityCertificate(
        p1=p1_value(schedule, instance),
        p3=p3_opt,
        dual=dual_opt,
        tolerance=tolerance,
    )


# ----- Lemma 2: the constructed dual solution S_D ----------------------------


def recover_slot_duals(
    instance: ProblemInstance,
    schedule: AllocationSchedule,
    *,
    eps1: float,
    eps2: float,
    support_tol: float = 1e-6,
    binding_tol: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Recover per-slot KKT multipliers (theta, rho) from the primal.

    For each slot, rebuilds the P2 subproblem at the trajectory's previous
    allocation, evaluates the gradient at the trajectory's decision, and
    fits the stationarity system ``grad_ij = theta_j - rho_i`` by least
    squares over the support (x_ij > tol), with rho pinned to zero at
    clouds whose capacity is slack. This is far more robust than barrier
    dual estimates at tiny slacks.

    Returns:
        (theta, rho) with shapes (T, J) and (T, I), clipped to >= 0.
    """
    from .subproblem import RegularizedSubproblem

    x, x_prev = schedule.with_previous()
    num_slots, num_clouds, num_users = x.shape
    theta = np.zeros((num_slots, num_users))
    rho = np.zeros((num_slots, num_clouds))
    capacities = np.asarray(instance.capacities, dtype=float)
    for t in range(num_slots):
        sub = RegularizedSubproblem.from_instance(
            instance, t, x_prev[t], eps1=eps1, eps2=eps2
        )
        grad = sub.gradient(x[t].ravel()).reshape(num_clouds, num_users)
        binding = capacities - x[t].sum(axis=1) <= binding_tol
        rows, rhs = [], []
        for (i, j) in zip(*np.nonzero(x[t] > support_tol)):
            row = np.zeros(num_users + num_clouds)
            row[j] = 1.0
            if binding[i]:
                row[num_users + i] = -1.0
            rows.append(row)
            rhs.append(grad[i, j])
        if rows:
            solution, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
            theta[t] = np.maximum(solution[:num_users], 0.0)
            rho[t] = np.maximum(
                np.where(binding, solution[num_users:], 0.0), 0.0
            )
    return theta, rho


@dataclass(frozen=True)
class ConstructedDual:
    """The paper's S_D mapping evaluated on an online run (Lemma 2).

    Attributes:
        alpha: (T, I) — (c_i/eta_i) ln((C_i+eps1)/(x*_{i,t-1}+eps1)).
        beta: (T, I, J) — (b_i/tau_j) ln((C_i+eps2)/(x*_{i,j,t-1}+eps2)).
        theta: (T, J) demand multipliers from the per-slot P2 solves.
        rho: (T, I) capacity multipliers from the per-slot P2 solves.
        objective: the D objective value of this (feasible) solution.
        max_violation: worst violation across the D constraints (14a-14c);
            ~0 confirms Lemma 2 numerically.
    """

    alpha: np.ndarray
    beta: np.ndarray
    theta: np.ndarray
    rho: np.ndarray
    objective: float
    max_violation: float


def construct_dual_solution(
    instance: ProblemInstance,
    schedule: AllocationSchedule,
    theta: np.ndarray,
    rho: np.ndarray,
    *,
    eps1: float,
    eps2: float,
) -> ConstructedDual:
    """Build S_D from an online trajectory and its per-slot duals (Lemma 2).

    Args:
        instance: the problem instance.
        schedule: the online algorithm's trajectory x*.
        theta: (T, J) per-slot demand multipliers of the P2 solves.
        rho: (T, I) per-slot capacity multipliers of the P2 solves. Note:
            our P2 uses the direct capacity form, whose multiplier enters
            stationarity as +rho_i; the paper's complement-form multiplier
            enters as +sum_{k != i} rho'_k. The two coincide when capacity
            is slack (rho = 0), which is where this construction is exact;
            binding capacity introduces an O(rho) discrepancy that shows up
            in ``max_violation``.
        eps1, eps2: the regularization parameters of the run.

    Returns:
        The constructed solution with its D objective and worst violation.
    """
    from .bounds import eta as eta_fn
    from .bounds import tau as tau_fn

    weights = instance.weights
    capacities = np.asarray(instance.capacities, dtype=float)
    workloads = np.asarray(instance.workloads, dtype=float)
    total_workload = float(workloads.sum())
    creg = weights.dynamic * np.asarray(instance.reconfig_prices, dtype=float)
    bmig = weights.dynamic * combined_migration_prices(instance)
    eta = eta_fn(capacities, eps1)
    tau = tau_fn(workloads, eps2)

    x, x_prev = schedule.with_previous()
    prev_cloud_totals = x_prev.sum(axis=2)  # (T, I)
    num_slots, num_clouds, num_users = x.shape

    alpha = (creg / eta)[None, :] * np.log(
        (capacities[None, :] + eps1) / (prev_cloud_totals + eps1)
    )
    # The paper prints beta's numerator as (C_i + eps2), but its own proof
    # of (14c) ("analogously ... beta <= b_i") only goes through when the
    # numerator matches tau's argument: with tau_j = ln(1 + lambda_j/eps2)
    # the bound requires (lambda_j + eps2). Since x*_{i,j,t} <= lambda_j at
    # any P2 optimum, the (14a) telescoping is unaffected (the numerator
    # cancels in beta_{t+1} - beta_t) and (14c) holds. We implement the
    # coherent version.
    beta = (bmig[None, :, None] / tau[None, None, :]) * np.log(
        (workloads[None, None, :] + eps2) / (x_prev + eps2)
    )
    theta = np.asarray(theta, dtype=float)
    rho = np.asarray(rho, dtype=float)

    # D objective (eq. 14): sum lambda theta + sum (Lambda - C)+ rho.
    surplus = np.maximum(total_workload - capacities, 0.0)
    objective = float((theta @ workloads).sum() + (rho @ surplus).sum())

    # Constraint violations. (14b): alpha <= c; (14c): beta <= b.
    violation = max(
        float((alpha - creg[None, :]).max(initial=0.0)),
        float((beta - bmig[None, :, None]).max(initial=0.0)),
        float((-alpha).max(initial=0.0)),
        float((-beta).max(initial=0.0)),
        float((-theta).max(initial=0.0)),
        float((-rho).max(initial=0.0)),
    )
    # (14a): -p + (alpha_{t+1} - alpha_t) + (beta_{t+1} - beta_t)
    #        + sum_{k != i} rho_k + theta_j <= 0, with alpha/beta_{T+1} = 0.
    alpha_next = np.zeros_like(alpha)
    alpha_next[:-1] = alpha[1:]
    beta_next = np.zeros_like(beta)
    beta_next[:-1] = beta[1:]
    rho_sum_except = rho.sum(axis=1, keepdims=True) - rho  # (T, I)
    for t in range(num_slots):
        prices = weights.static * instance.static_prices(t)  # (I, J)
        lhs = (
            -prices
            + (alpha_next[t] - alpha[t])[:, None]
            + (beta_next[t] - beta[t])
            + rho_sum_except[t][:, None]
            + theta[t][None, :]
        )
        violation = max(violation, float(lhs.max(initial=0.0)))
    return ConstructedDual(
        alpha=alpha,
        beta=beta,
        theta=theta,
        rho=rho,
        objective=objective,
        max_violation=violation,
    )
