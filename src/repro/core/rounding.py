"""Integral (VM-granular) allocation via rounding.

The paper's model allocates fractional resources but notes that "virtual
machines are the smallest resource segment in the edge clouds"
(Section II-C). This module bridges the gap: it rounds a fractional
schedule to an integral one, per user and per slot, and measures what the
integrality restriction costs — a natural extension experiment
(``benchmarks/bench_rounding.py``).

The procedure per (slot, user):

1. rescale the user's allocations to sum exactly to its (integer)
   workload lambda_j;
2. apply the largest-remainder method: floor every entry, then hand the
   remaining units to the entries with the largest fractional parts
   (deterministic, ties broken by cloud index);
3. repair capacity overflows caused by rounding by moving single units
   from overloaded clouds to the cheapest cloud with a free unit.

The result satisfies the demand constraints exactly; the capacity repair
succeeds whenever sum_i floor-headroom covers the overflow (always, for
instances whose capacities exceed total workload by >= J units — checked
and reported otherwise).
"""

from __future__ import annotations

import numpy as np

from .allocation import AllocationSchedule
from .costs import total_cost
from .problem import ProblemInstance


class RoundingError(RuntimeError):
    """Raised when the capacity repair cannot restore feasibility."""


def round_user_allocation(x_user: np.ndarray, workload: float) -> np.ndarray:
    """Round one user's (I,) fractional allocation to integers summing to
    its integer workload, via the largest-remainder method."""
    workload_int = int(round(workload))
    if abs(workload - workload_int) > 1e-9:
        raise ValueError(f"workload {workload} is not an integer")
    x_user = np.asarray(x_user, dtype=float)
    total = x_user.sum()
    if total <= 0:
        # Degenerate column: place everything on cloud 0.
        y = np.zeros_like(x_user, dtype=np.int64)
        y[0] = workload_int
        return y
    scaled = x_user * (workload_int / total)
    floors = np.floor(scaled + 1e-12).astype(np.int64)
    remaining = workload_int - int(floors.sum())
    if remaining > 0:
        remainders = scaled - floors
        order = np.argsort(-remainders, kind="stable")
        floors[order[:remaining]] += 1
    return floors


def repair_capacity(
    y: np.ndarray, capacities: np.ndarray, move_prices: np.ndarray
) -> np.ndarray:
    """Move single units between clouds until capacities hold.

    Args:
        y: (I, J) integral allocation for one slot.
        capacities: (I,) capacity limits.
        move_prices: (I, J) price of a unit at each (cloud, user) — used to
            pick the cheapest destination for displaced units.

    Returns:
        A repaired copy of ``y``.

    Raises:
        RoundingError: when no cloud has room for a displaced unit.
    """
    y = y.copy()
    capacities = np.asarray(capacities, dtype=float)
    for _ in range(int(y.sum()) + 1):
        loads = y.sum(axis=1)
        overloaded = np.nonzero(loads > capacities + 1e-9)[0]
        if overloaded.size == 0:
            return y
        cloud = int(overloaded[0])
        # Displace a unit of the user with the most units on this cloud.
        user = int(np.argmax(y[cloud]))
        slack = capacities - loads
        candidates = np.nonzero(slack >= 1.0 - 1e-9)[0]
        candidates = candidates[candidates != cloud]
        if candidates.size == 0:
            raise RoundingError(
                "capacity repair failed: no cloud has a free unit "
                f"(overflow at cloud {cloud})"
            )
        destination = int(candidates[np.argmin(move_prices[candidates, user])])
        y[cloud, user] -= 1
        y[destination, user] += 1
    raise RoundingError("capacity repair did not terminate")


def round_schedule(
    schedule: AllocationSchedule, instance: ProblemInstance
) -> AllocationSchedule:
    """Round a fractional schedule to an integral one, slot by slot.

    Demand constraints hold exactly (each user's allocation sums to its
    integer workload); capacity overflows introduced by rounding are
    repaired by unit moves toward the cheapest static price.
    """
    workloads = np.asarray(instance.workloads, dtype=float)
    rounded = np.zeros_like(schedule.x)
    for t in range(schedule.num_slots):
        y = np.stack(
            [
                round_user_allocation(schedule.x[t, :, j], workloads[j])
                for j in range(schedule.num_users)
            ],
            axis=1,
        ).astype(np.int64)
        y = repair_capacity(
            y, np.asarray(instance.capacities), instance.static_prices(t)
        )
        rounded[t] = y
    return AllocationSchedule(rounded)


def integrality_gap(
    schedule: AllocationSchedule, instance: ProblemInstance
) -> tuple[AllocationSchedule, float]:
    """Round a schedule and report the relative cost increase.

    Returns:
        (rounded schedule, relative gap), where the gap is
        cost(rounded)/cost(fractional) - 1.
    """
    rounded = round_schedule(schedule, instance)
    fractional_cost = total_cost(schedule, instance)
    rounded_cost = total_cost(rounded, instance)
    return rounded, rounded_cost / fractional_cost - 1.0
