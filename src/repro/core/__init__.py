"""The paper's core: problem model, costs, transformation, online algorithm."""

from .allocation import FEASIBILITY_TOL, AllocationSchedule, FeasibilityReport
from .bounds import (
    competitive_ratio_bound,
    eta,
    gamma,
    ratio_bound_curve,
    suggest_epsilon,
    tau,
)
from .duality import (
    ConstructedDual,
    DualityCertificate,
    construct_dual_solution,
    duality_certificate,
    p1_value,
    recover_slot_duals,
    solve_dual,
    solve_p3,
)
from .costs import (
    CostBreakdown,
    cost_breakdown,
    migration_cost,
    migration_volumes,
    operation_cost,
    positive_part,
    reconfiguration_cost,
    service_quality_cost,
    total_cost,
)
from .problem import CostWeights, ProblemInstance
from .regularization import DEFAULT_EPSILON, OnlineRegularizedAllocator
from .rounding import (
    RoundingError,
    integrality_gap,
    repair_capacity,
    round_schedule,
    round_user_allocation,
)
from .subproblem import RegularizedSubproblem
from .transformation import (
    combined_migration_prices,
    lemma1_gap,
    p0_objective,
    p1_migration_cost,
    p1_objective,
    per_user_inbound_migration,
    transformation_constant,
)

__all__ = [
    "AllocationSchedule",
    "ConstructedDual",
    "CostBreakdown",
    "CostWeights",
    "DEFAULT_EPSILON",
    "DualityCertificate",
    "FEASIBILITY_TOL",
    "FeasibilityReport",
    "OnlineRegularizedAllocator",
    "ProblemInstance",
    "RegularizedSubproblem",
    "RoundingError",
    "combined_migration_prices",
    "competitive_ratio_bound",
    "construct_dual_solution",
    "cost_breakdown",
    "duality_certificate",
    "eta",
    "gamma",
    "integrality_gap",
    "lemma1_gap",
    "migration_cost",
    "migration_volumes",
    "operation_cost",
    "p1_value",
    "p0_objective",
    "p1_migration_cost",
    "p1_objective",
    "per_user_inbound_migration",
    "positive_part",
    "ratio_bound_curve",
    "recover_slot_duals",
    "reconfiguration_cost",
    "repair_capacity",
    "round_schedule",
    "round_user_allocation",
    "service_quality_cost",
    "solve_dual",
    "solve_p3",
    "suggest_epsilon",
    "tau",
    "total_cost",
    "transformation_constant",
]
