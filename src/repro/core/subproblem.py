"""The regularized per-slot subproblem P2 (paper Section III-B, eq. 10).

Given the previous slot's optimal allocation x*_{t-1}, the online algorithm
solves

    min  sum_ij p_ij x_ij                                  (static prices)
       + sum_i (c_i/eta_i) [ (X_i+eps1) ln (X_i+eps1)/(X'_i+eps1) - X_i ]
       + sum_ij (b_i/tau_j) [ (x_ij+eps2) ln (x_ij+eps2)/(x'_ij+eps2) - x_ij ]
    s.t. sum_i x_ij >= lambda_j   for every user j                (10a)
         sum_j x_ij <= C_i        for every cloud i    (capacity, see below)
         x_ij >= 0                                                 (10c)

where p_ij = w_s (a_{i,t} + d(l_{j,t}, i)/lambda_j), X_i = sum_j x_ij,
eta_i = ln(1 + C_i/eps1), tau_j = ln(1 + lambda_j/eps2), and c_i, b_i are
the (dynamic-weighted) reconfiguration price and combined migration price.

The relative-entropy terms are the regularization of the non-smooth (.)+
dynamic costs; their gradients are the logarithmic "price of change" that
makes the algorithm provably competitive.

The paper writes the capacity constraint in the complement form (10b),
``sum_{k != i} X_k >= Lambda - C_i``, and argues (Theorem 1) that optima
respect ``X_i <= C_i`` anyway because the demand constraint binds. That
argument fails under the entropy regularizer's *decrease* penalty (holding
stale allocation can beat paying the static price, so total allocation can
exceed total demand and a cloud can exceed its capacity while (10b) still
holds). We therefore enforce capacity directly — equivalent to (10b)
whenever the paper's argument applies, and strictly safe otherwise. See
``constraint_matrices`` and DESIGN.md.

Variables are flattened cloud-major: ``flat[i * J + j] = x[i, j]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

from ..solvers.base import ConvexProgram
from .bounds import eta as eta_fn
from .bounds import tau as tau_fn
from .problem import ProblemInstance
from .transformation import combined_migration_prices

#: Relative slack (>1) used to construct a strictly feasible starting point.
_INTERIOR_MARGIN = 1.05

#: Floor applied inside logarithms so that trial points slightly outside the
#: feasible region (some optimizers evaluate them) yield finite values.
_LOG_FLOOR = 1e-12


def _safe(values: np.ndarray | float) -> np.ndarray:
    """Clamp log arguments away from zero; identity on the feasible region."""
    return np.maximum(values, _LOG_FLOOR)


@dataclass(frozen=True)
class RegularizedSubproblem:
    """P2 for one time slot, ready to hand to any convex backend.

    Attributes:
        static_prices: (I, J) effective static prices p_ij (already weighted).
        reconfig_prices: (I,) dynamic-weighted reconfiguration prices c_i.
        migration_prices: (I,) dynamic-weighted combined prices b_i.
        capacities: (I,) cloud capacities C_i.
        workloads: (J,) user workloads lambda_j.
        x_prev: (I, J) previous slot's allocation x*_{t-1}.
        eps1: the reconfiguration regularization parameter (scalar).
        eps2: the migration regularization parameter — a scalar, or a (J,)
            vector giving each column its own smoothing width. The vector
            form is what makes the cohort-reduced P2 of
            :mod:`repro.aggregate` exact for uniform cohorts: a column
            standing for ``n`` merged users carries ``n * eps2``, so its
            entropy term equals the sum of the members' entropy terms.
    """

    static_prices: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: np.ndarray
    capacities: np.ndarray
    workloads: np.ndarray
    x_prev: np.ndarray
    eps1: float
    eps2: float | np.ndarray

    def __post_init__(self) -> None:
        num_clouds, num_users = np.asarray(self.static_prices).shape
        if np.asarray(self.x_prev).shape != (num_clouds, num_users):
            raise ValueError("x_prev must have shape (I, J)")
        if np.any(np.asarray(self.x_prev) < 0):
            raise ValueError("x_prev must be nonnegative")
        eps2 = np.asarray(self.eps2, dtype=float)
        if eps2.ndim not in (0, 1) or (eps2.ndim == 1 and eps2.shape != (num_users,)):
            raise ValueError("eps2 must be a scalar or a (J,) vector")
        if self.eps1 <= 0 or np.any(eps2 <= 0):
            raise ValueError("eps1 and eps2 must be positive")
        if np.asarray(self.capacities).shape != (num_clouds,):
            raise ValueError("capacities must have shape (I,)")
        if np.asarray(self.workloads).shape != (num_users,):
            raise ValueError("workloads must have shape (J,)")

    @classmethod
    def from_instance(
        cls,
        instance: ProblemInstance,
        slot: int,
        x_prev: np.ndarray,
        *,
        eps1: float,
        eps2: float,
    ) -> "RegularizedSubproblem":
        """Build the slot-``slot`` subproblem of an instance.

        Static prices get the static weight; the reconfiguration and
        combined migration prices get the dynamic weight, mirroring the
        weighted P0 objective.
        """
        weights = instance.weights
        return cls(
            static_prices=weights.static * instance.static_prices(slot),
            reconfig_prices=weights.dynamic
            * np.asarray(instance.reconfig_prices, dtype=float),
            migration_prices=weights.dynamic * combined_migration_prices(instance),
            capacities=np.asarray(instance.capacities, dtype=float),
            workloads=np.asarray(instance.workloads, dtype=float),
            x_prev=np.asarray(x_prev, dtype=float),
            eps1=eps1,
            eps2=eps2,
        )

    # ----- shapes and scales -------------------------------------------------

    @property
    def num_clouds(self) -> int:
        return int(np.asarray(self.static_prices).shape[0])

    @property
    def num_users(self) -> int:
        return int(np.asarray(self.static_prices).shape[1])

    @property
    def eta(self) -> np.ndarray:
        """eta_i = ln(1 + C_i/eps1)."""
        return eta_fn(np.asarray(self.capacities), self.eps1)

    @property
    def tau(self) -> np.ndarray:
        """tau_j = ln(1 + lambda_j/eps2) (the paper's tau_{i,j} is j-only)."""
        return tau_fn(np.asarray(self.workloads), self.eps2)

    def _reshape(self, flat: np.ndarray) -> np.ndarray:
        return np.asarray(flat, dtype=float).reshape(self.num_clouds, self.num_users)

    # ----- objective ----------------------------------------------------------

    def objective(self, flat: np.ndarray) -> float:
        """P2(t) evaluated at a flattened allocation."""
        x = self._reshape(flat)
        total = float(np.sum(np.asarray(self.static_prices) * x))
        cloud_totals = x.sum(axis=1)
        prev_totals = np.asarray(self.x_prev).sum(axis=1)
        creg = np.asarray(self.reconfig_prices) / self.eta
        shifted = _safe(cloud_totals + self.eps1)
        prev_shifted = prev_totals + self.eps1
        total += float(
            np.sum(creg * (shifted * np.log(shifted / prev_shifted) - cloud_totals))
        )
        bmig = (np.asarray(self.migration_prices)[:, None] / self.tau[None, :])
        xs = _safe(x + self.eps2)
        prev = np.asarray(self.x_prev) + self.eps2
        total += float(np.sum(bmig * (xs * np.log(xs / prev) - x)))
        return total

    def gradient(self, flat: np.ndarray) -> np.ndarray:
        """Analytic gradient of P2(t) (flattened, cloud-major)."""
        x = self._reshape(flat)
        grad = np.asarray(self.static_prices, dtype=float).copy()
        cloud_totals = x.sum(axis=1)
        prev_totals = np.asarray(self.x_prev).sum(axis=1)
        creg = np.asarray(self.reconfig_prices) / self.eta
        grad += (
            creg * np.log(_safe(cloud_totals + self.eps1) / (prev_totals + self.eps1))
        )[:, None]
        bmig = np.asarray(self.migration_prices)[:, None] / self.tau[None, :]
        grad += bmig * np.log(
            _safe(x + self.eps2) / (np.asarray(self.x_prev) + self.eps2)
        )
        return grad.ravel()

    def hessian(self, flat: np.ndarray) -> sparse.spmatrix:
        """Sparse Hessian: diagonal + per-cloud rank-one blocks of ones.

        The block-diagonal part is assembled as
        ``kron(diag(block_scale), ones(J, J))`` — one sparse expression per
        call instead of a per-cloud Python loop through LIL fancy indexing,
        which dominated runtime at J >= 200 (see
        ``benchmarks/bench_hessian.py``).
        """
        x = self._reshape(flat)
        num_users = x.shape[1]
        diag = (
            np.asarray(self.migration_prices)[:, None]
            / self.tau[None, :]
            / _safe(x + self.eps2)
        ).ravel()
        cloud_totals = x.sum(axis=1)
        creg = np.asarray(self.reconfig_prices) / self.eta
        block_scale = creg / _safe(cloud_totals + self.eps1)
        blocks = sparse.kron(
            sparse.diags(block_scale),
            np.ones((num_users, num_users)),
            format="csr",
        )
        return (blocks + sparse.diags(diag)).tocsr()

    def hessian_factors(self, flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Structured Hessian: (diag, cloud_scale) with
        H = diag(diag) + sum_i cloud_scale[i] * 1_i 1_i^T,
        where 1_i is the indicator of cloud i's variables. Used by the
        custom interior-point backend's Woodbury solve."""
        x = self._reshape(flat)
        diag = (
            np.asarray(self.migration_prices)[:, None]
            / self.tau[None, :]
            / _safe(x + self.eps2)
        ).ravel()
        cloud_totals = x.sum(axis=1)
        creg = np.asarray(self.reconfig_prices) / self.eta
        return diag, creg / _safe(cloud_totals + self.eps1)

    # ----- constraints --------------------------------------------------------

    def constraint_matrices(self) -> tuple[sparse.spmatrix, np.ndarray]:
        """(A, lower) for A x >= lower covering demand (10a) and capacity.

        Capacity is enforced directly as ``sum_j x_ij <= C_i`` (written as
        ``-X_i >= -C_i``) instead of the paper's complement form (10b).
        The two are equivalent on the region the paper's Theorem 1 argues
        the optimum lives in (demand binding), and (10b) alone does *not*
        imply (6b) when the entropy regularizer makes the optimizer hold
        allocation above demand (its decrease penalty can beat the static
        price); enforcing (6b) directly makes feasibility of the online
        trajectory structural rather than argumentative. See DESIGN.md.
        """
        num_clouds, num_users = self.num_clouds, self.num_users
        n = num_clouds * num_users
        # (10a): sum_i x_ij >= lambda_j. Row j has ones at columns i*J + j.
        demand = sparse.coo_matrix(
            (np.ones(n), (np.tile(np.arange(num_users), num_clouds), np.arange(n))),
            shape=(num_users, n),
        )
        # Capacity: -sum_j x_ij >= -C_i. Row i has -1 on cloud i's columns.
        capacity = sparse.coo_matrix(
            (
                -np.ones(n),
                (np.repeat(np.arange(num_clouds), num_users), np.arange(n)),
            ),
            shape=(num_clouds, n),
        )
        matrix = sparse.vstack([demand, capacity]).tocsr()
        lower = np.concatenate(
            [
                np.asarray(self.workloads, dtype=float),
                -np.asarray(self.capacities, dtype=float),
            ]
        )
        return matrix, lower

    def interior_point(self) -> np.ndarray:
        """A strictly feasible start: capacity-proportional with margin.

        x_ij = m * lambda_j * C_i / sum(C) with margin m in (1, sum(C)/Lambda)
        gives demand slack (m-1) lambda_j > 0 and capacity slack
        C_i (1 - m Lambda / sum(C)) > 0. Requires strict overprovisioning
        (sum(C) > Lambda); raises ValueError otherwise since the subproblem
        then has an empty interior.
        """
        capacities = np.asarray(self.capacities, dtype=float)
        total_workload = float(np.asarray(self.workloads).sum())
        headroom = capacities.sum() / total_workload
        if headroom <= 1.0:
            raise ValueError(
                "no strictly feasible point: total capacity must exceed total workload"
            )
        margin = min(_INTERIOR_MARGIN, 0.5 * (1.0 + headroom))
        share = capacities / capacities.sum()
        x = margin * share[:, None] * np.asarray(self.workloads, dtype=float)[None, :]
        return x.ravel()

    def build_program(
        self, x0: np.ndarray | None = None, *, warm_start: bool | None = None
    ) -> ConvexProgram:
        """Package the subproblem for a :class:`ConvexBackend`.

        An explicit ``x0`` is treated as a warm start (believed near the
        optimum) unless ``warm_start`` says otherwise; backends may then
        shorten their schedule but must return the same optimum.
        """
        matrix, lower = self.constraint_matrices()
        n = self.num_clouds * self.num_users
        if warm_start is None:
            warm_start = x0 is not None
        return ConvexProgram(
            objective=self.objective,
            gradient=self.gradient,
            hessian=self.hessian,
            constraint_matrix=matrix,
            constraint_lower=lower,
            x_lower=np.zeros(n),
            x0=self.interior_point() if x0 is None else np.asarray(x0, dtype=float),
            structure=self,
            warm_start=bool(warm_start),
        )

    # ----- optimality diagnostics ---------------------------------------------

    def kkt_stationarity_residual(
        self, flat: np.ndarray, theta: np.ndarray, rho: np.ndarray
    ) -> float:
        """Max violation of the stationarity conditions (cf. 15a) given duals.

        With demand multipliers theta_j >= 0 and capacity multipliers
        rho_i >= 0, stationarity at a P2 optimum requires, for every (i, j),
        the reduced gradient g_ij = grad_ij - theta_j + rho_i to satisfy the
        complementarity pair g_ij >= 0 and x_ij * g_ij = 0. The residual is

            max_ij max( -g_ij, min(x_ij, |g_ij|) ),

        which is zero exactly at KKT points and robust to variables sitting
        just off the boundary (interior-point solutions have x ~ mu / g
        there, making the min(.) term of order mu).

        Args:
            flat: candidate solution (flattened).
            theta: (J,) demand multipliers.
            rho: (I,) capacity multipliers.

        Returns:
            The largest violation over all (i, j).
        """
        x = self._reshape(flat)
        grad = self.gradient(flat).reshape(x.shape)
        reduced = grad - np.asarray(theta)[None, :] + np.asarray(rho)[:, None]
        dual_infeasibility = np.maximum(0.0, -reduced)
        complementarity = np.minimum(np.abs(x), np.abs(reduced))
        return float(np.maximum(dual_infeasibility, complementarity).max())
