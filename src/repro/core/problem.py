"""The edge-cloud resource allocation problem instance (paper Section II).

A :class:`ProblemInstance` bundles every input of problem P0:

* the system: capacities ``C_i`` and inter-cloud delays ``d(i, i')``;
* the users: workloads ``lambda_j``, per-slot attachments ``l_{j,t}`` and
  access delays ``d(j, l_{j,t})``;
* the prices: operation ``a_{i,t}``, reconfiguration ``c_i``, and migration
  ``b_i^out`` / ``b_i^in``;
* the weights between the static and dynamic cost groups (Section II-D
  "we omit the weights here but we will keep them during our evaluation").

All arrays use the axis order (time, cloud, user) = (T, I, J) throughout the
project.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..pricing.bandwidth import MigrationPrices


@dataclass(frozen=True)
class CostWeights:
    """Weights of the static and dynamic cost groups in the objective.

    The paper's Section V-C sweep parameter mu is the ratio
    ``dynamic / static``.
    """

    static: float = 1.0
    dynamic: float = 1.0

    def __post_init__(self) -> None:
        if self.static < 0 or self.dynamic < 0:
            raise ValueError("cost weights must be nonnegative")
        if self.static == 0 and self.dynamic == 0:
            raise ValueError("at least one cost weight must be positive")

    @property
    def mu(self) -> float:
        """The dynamic/static weight ratio swept in Figure 4."""
        if self.static == 0:
            return float("inf")
        return self.dynamic / self.static

    @classmethod
    def from_mu(cls, mu: float) -> "CostWeights":
        """Weights with static = 1 and dynamic = mu."""
        if mu < 0:
            raise ValueError("mu must be nonnegative")
        return cls(static=1.0, dynamic=mu)


@dataclass(frozen=True)
class ProblemInstance:
    """All inputs of the online edge-cloud allocation problem P0.

    Attributes:
        workloads: (J,) positive per-user workloads lambda_j.
        capacities: (I,) positive per-cloud capacities C_i.
        op_prices: (T, I) positive operation prices a_{i,t}.
        reconfig_prices: (I,) nonnegative reconfiguration prices c_i.
        migration_prices: per-cloud outbound/inbound migration prices.
        inter_cloud_delay: (I, I) symmetric priced delays, zero diagonal.
        attachment: (T, J) integer l_{j,t} — the cloud covering user j.
        access_delay: (T, J) priced user-to-attachment delays d(j, l_{j,t}).
        weights: static/dynamic cost weights.
    """

    workloads: np.ndarray
    capacities: np.ndarray
    op_prices: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: MigrationPrices
    inter_cloud_delay: np.ndarray
    attachment: np.ndarray
    access_delay: np.ndarray
    weights: CostWeights = field(default_factory=CostWeights)

    def __post_init__(self) -> None:
        workloads = np.asarray(self.workloads, dtype=float)
        capacities = np.asarray(self.capacities, dtype=float)
        op_prices = np.asarray(self.op_prices, dtype=float)
        reconfig = np.asarray(self.reconfig_prices, dtype=float)
        delay = np.asarray(self.inter_cloud_delay, dtype=float)
        attachment = np.asarray(self.attachment)
        access = np.asarray(self.access_delay, dtype=float)

        if workloads.ndim != 1 or workloads.size == 0:
            raise ValueError("workloads must be a nonempty (J,) array")
        if np.any(workloads <= 0):
            raise ValueError("workloads must be strictly positive")
        if capacities.ndim != 1 or capacities.size == 0:
            raise ValueError("capacities must be a nonempty (I,) array")
        if np.any(capacities <= 0):
            raise ValueError("capacities must be strictly positive")
        num_clouds = capacities.size
        num_users = workloads.size
        if op_prices.ndim != 2 or op_prices.shape[1] != num_clouds:
            raise ValueError(f"op_prices must have shape (T, {num_clouds})")
        num_slots = op_prices.shape[0]
        if num_slots == 0:
            raise ValueError("need at least one time slot")
        if np.any(op_prices < 0):
            raise ValueError("operation prices must be nonnegative")
        if reconfig.shape != (num_clouds,) or np.any(reconfig < 0):
            raise ValueError("reconfig_prices must be a nonnegative (I,) array")
        if self.migration_prices.out.shape != (num_clouds,):
            raise ValueError("migration_prices must cover every cloud")
        if delay.shape != (num_clouds, num_clouds):
            raise ValueError("inter_cloud_delay must have shape (I, I)")
        if np.any(delay < 0) or np.any(np.abs(np.diag(delay)) > 1e-12):
            raise ValueError("inter_cloud_delay must be nonnegative with zero diagonal")
        if attachment.shape != (num_slots, num_users):
            raise ValueError(f"attachment must have shape ({num_slots}, {num_users})")
        if not np.issubdtype(attachment.dtype, np.integer):
            raise ValueError("attachment must be an integer array")
        if attachment.min() < 0 or attachment.max() >= num_clouds:
            raise ValueError("attachment entries must index a cloud")
        if access.shape != (num_slots, num_users) or np.any(access < 0):
            raise ValueError("access_delay must be a nonnegative (T, J) array")
        total_workload = workloads.sum()
        if capacities.sum() < total_workload - 1e-9:
            raise ValueError(
                "infeasible instance: total capacity "
                f"{capacities.sum():.6g} < total workload {total_workload:.6g}"
            )

    @property
    def num_clouds(self) -> int:
        """I — the number of edge clouds."""
        return int(np.asarray(self.capacities).size)

    @property
    def num_users(self) -> int:
        """J — the number of users."""
        return int(np.asarray(self.workloads).size)

    @property
    def num_slots(self) -> int:
        """T — the number of time slots."""
        return int(np.asarray(self.op_prices).shape[0])

    @property
    def total_workload(self) -> float:
        """Sum of all user workloads."""
        return float(np.asarray(self.workloads, dtype=float).sum())

    def static_prices(self, slot: int) -> np.ndarray:
        """Per-unit static price p_{i,j} = a_{i,t} + d(l_{j,t}, i)/lambda_j.

        This is the coefficient of x_{i,j,t} in the static part of the
        objective (operation cost plus the allocation-dependent part of the
        service quality cost), *before* applying the static weight.

        Returns:
            (I, J) array for the given slot.
        """
        if not 0 <= slot < self.num_slots:
            raise IndexError(f"slot {slot} outside [0, {self.num_slots})")
        delay_to_attachment = np.asarray(self.inter_cloud_delay)[
            :, np.asarray(self.attachment)[slot]
        ]  # (I, J): d(i, l_{j,t}) = d(l_{j,t}, i) by symmetry
        return (
            np.asarray(self.op_prices, dtype=float)[slot][:, None]
            + delay_to_attachment / np.asarray(self.workloads, dtype=float)[None, :]
        )

    def access_delay_constant(self) -> float:
        """The allocation-independent service-quality term Sum_t Sum_j d(j, l_{j,t})."""
        return float(np.asarray(self.access_delay, dtype=float).sum())

    def slice_slots(self, start: int, stop: int) -> "ProblemInstance":
        """A sub-instance covering slots [start, stop)."""
        if not 0 <= start < stop <= self.num_slots:
            raise ValueError(f"invalid slot range [{start}, {stop})")
        return replace(
            self,
            op_prices=np.asarray(self.op_prices)[start:stop],
            attachment=np.asarray(self.attachment)[start:stop],
            access_delay=np.asarray(self.access_delay)[start:stop],
        )

    def with_weights(self, weights: CostWeights) -> "ProblemInstance":
        """The same instance with different static/dynamic weights."""
        return replace(self, weights=weights)
