"""Allocation schedules: the decision variables x_{i,j,t} over a horizon.

An :class:`AllocationSchedule` is the output of every algorithm in this
project — online or offline — stored as a dense (T, I, J) array. It knows
how to check its own feasibility against a :class:`ProblemInstance`
(constraints (6a)-(6c) of problem P0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .problem import ProblemInstance

#: Default absolute tolerance for feasibility checks; solvers are iterative.
FEASIBILITY_TOL = 1e-6


@dataclass(frozen=True)
class FeasibilityReport:
    """Worst-case violations of each P0 constraint family (0 = satisfied)."""

    demand_violation: float
    capacity_violation: float
    negativity_violation: float

    @property
    def is_feasible(self) -> bool:
        return (
            self.demand_violation <= 0
            and self.capacity_violation <= 0
            and self.negativity_violation <= 0
        )

    def worst(self) -> float:
        """Largest violation across all constraint families."""
        return max(self.demand_violation, self.capacity_violation, self.negativity_violation)


@dataclass(frozen=True)
class AllocationSchedule:
    """A full allocation trajectory x with shape (T, I, J).

    The convention x_{i,j,0} = 0 from the paper means the slot *before* the
    first slot of this schedule is all-zero; dynamic costs for t = 0 are
    charged against that zero baseline.
    """

    x: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=float)
        if x.ndim != 3:
            raise ValueError("allocation must have shape (T, I, J)")
        if not np.all(np.isfinite(x)):
            raise ValueError("allocation contains non-finite values")
        object.__setattr__(self, "x", x)

    @property
    def num_slots(self) -> int:
        return int(self.x.shape[0])

    @property
    def num_clouds(self) -> int:
        return int(self.x.shape[1])

    @property
    def num_users(self) -> int:
        return int(self.x.shape[2])

    def cloud_totals(self) -> np.ndarray:
        """x_{i,t} = Sum_j x_{i,j,t}, shape (T, I)."""
        return self.x.sum(axis=2)

    def user_totals(self) -> np.ndarray:
        """Sum_i x_{i,j,t}, shape (T, J)."""
        return self.x.sum(axis=1)

    def with_previous(self) -> tuple[np.ndarray, np.ndarray]:
        """(x_t, x_{t-1}) aligned arrays, using the all-zero slot -1 baseline.

        Returns:
            A pair of (T, I, J) arrays where the second is the schedule
            shifted by one slot with zeros prepended.
        """
        prev = np.zeros_like(self.x)
        prev[1:] = self.x[:-1]
        return self.x, prev

    def feasibility_report(self, instance: ProblemInstance) -> FeasibilityReport:
        """Measure the worst violation of constraints (6a), (6b), (6c)."""
        if self.x.shape != (instance.num_slots, instance.num_clouds, instance.num_users):
            raise ValueError(
                f"allocation shape {self.x.shape} does not match instance "
                f"({instance.num_slots}, {instance.num_clouds}, {instance.num_users})"
            )
        workloads = np.asarray(instance.workloads, dtype=float)
        capacities = np.asarray(instance.capacities, dtype=float)
        demand = float((workloads[None, :] - self.user_totals()).max())
        capacity = float((self.cloud_totals() - capacities[None, :]).max())
        negativity = float((-self.x).max())
        return FeasibilityReport(
            demand_violation=max(0.0, demand),
            capacity_violation=max(0.0, capacity),
            negativity_violation=max(0.0, negativity),
        )

    def is_feasible(self, instance: ProblemInstance, tol: float = FEASIBILITY_TOL) -> bool:
        """True if every P0 constraint holds up to ``tol``."""
        return self.feasibility_report(instance).worst() <= tol

    def require_feasible(self, instance: ProblemInstance, tol: float = FEASIBILITY_TOL) -> None:
        """Raise ValueError (with the violations) unless feasible up to ``tol``."""
        report = self.feasibility_report(instance)
        if report.worst() > tol:
            raise ValueError(
                "infeasible allocation: "
                f"demand violation {report.demand_violation:.3e}, "
                f"capacity violation {report.capacity_violation:.3e}, "
                f"negativity violation {report.negativity_violation:.3e}"
            )

    @classmethod
    def zeros(cls, num_slots: int, num_clouds: int, num_users: int) -> "AllocationSchedule":
        """An all-zero schedule (the paper's slot-0 baseline)."""
        return cls(np.zeros((num_slots, num_clouds, num_users)))

    @classmethod
    def from_slots(cls, slots: list[np.ndarray]) -> "AllocationSchedule":
        """Stack per-slot (I, J) decisions into a schedule."""
        if not slots:
            raise ValueError("need at least one slot")
        return cls(np.stack([np.asarray(s, dtype=float) for s in slots], axis=0))
