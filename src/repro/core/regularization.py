"""The paper's online algorithm (Section III-B).

At the start of each slot t, observe the attachments l_{j,t} and prices
a_{i,t}, build the regularized subproblem P2 from the previous decision
x*_{t-1} (with x*_0 = 0), solve it optimally with a convex backend, and
output x*_t. Theorem 1 guarantees the resulting trajectory is feasible for
P0/P1; Theorem 2 bounds its competitive ratio by 1 + gamma |I|.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..solvers.base import ConvexBackend, SolverResult
from ..solvers.registry import default_backend
from .allocation import AllocationSchedule
from .problem import ProblemInstance
from .subproblem import RegularizedSubproblem

#: Default regularization parameters; Figure 4 sweeps them over [1e-3, 1e3].
DEFAULT_EPSILON = 1.0


def _repair_feasibility(x: np.ndarray, instance: ProblemInstance) -> np.ndarray:
    """Project a numerically-converged P2 solution onto exact feasibility.

    Iterative solvers satisfy the binding demand constraints only up to
    their tolerance. Clip negatives and scale each deficient user's
    allocation up by the (tiny) missing factor; the capacity headroom of P2
    optima (Theorem 1 keeps them strictly inside whenever the instance is
    overprovisioned) absorbs the adjustment.
    """
    x = np.maximum(x, 0.0)
    workloads = np.asarray(instance.workloads, dtype=float)
    totals = x.sum(axis=0)
    deficient = totals < workloads
    if np.any(deficient):
        scale = np.ones_like(totals)
        positive = totals > 0
        scale[deficient & positive] = (
            workloads[deficient & positive] / totals[deficient & positive]
        )
        x = x * scale[None, :]
        # A user with an all-zero column (cannot happen at a P2 optimum, but
        # guard anyway) gets its workload at its attached cloud's column.
        for j in np.nonzero(deficient & ~positive)[0]:
            x[:, j] = workloads[j] / x.shape[0]
    return x


@dataclass
class OnlineRegularizedAllocator:
    """online-approx: solve the regularized subproblem P2 in every slot.

    Attributes:
        eps1: regularizer parameter for the reconfiguration term.
        eps2: regularizer parameter for the migration term.
        backend: convex backend used to solve P2 (default: registry default).
        tol: optimizer tolerance per subproblem.
        warm_start: start each solve from the previous slot's solution
            (projected into the interior) instead of the canonical interior
            point; identical optima, usually fewer iterations.
    """

    eps1: float = DEFAULT_EPSILON
    eps2: float = DEFAULT_EPSILON
    backend: ConvexBackend | None = None
    tol: float = 1e-8
    warm_start: bool = True
    name: str = "online-approx"
    #: Per-slot solver results from the most recent run (diagnostics).
    last_solves: list[SolverResult] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.eps1 <= 0 or self.eps2 <= 0:
            raise ValueError("eps1 and eps2 must be positive")
        if self.tol <= 0:
            raise ValueError("tol must be positive")

    def _resolve_backend(self) -> ConvexBackend:
        return self.backend if self.backend is not None else default_backend()

    def step(
        self, instance: ProblemInstance, slot: int, x_prev: np.ndarray
    ) -> tuple[np.ndarray, SolverResult]:
        """Solve P2 for one slot; returns (x*_t as (I, J), solver result)."""
        subproblem = RegularizedSubproblem.from_instance(
            instance, slot, x_prev, eps1=self.eps1, eps2=self.eps2
        )
        x0 = None
        if self.warm_start and slot > 0:
            x0 = self._warm_start_point(subproblem, x_prev)
        program = subproblem.build_program(x0=x0)
        result = self._resolve_backend().solve(program, tol=self.tol)
        x_opt = result.x.reshape(instance.num_clouds, instance.num_users)
        x_opt = _repair_feasibility(x_opt, instance)
        return x_opt, result

    @property
    def total_solver_iterations(self) -> int:
        """Summed backend iterations of the most recent run (diagnostics)."""
        return sum(result.iterations for result in self.last_solves)

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Run the online algorithm over the whole horizon of the instance."""
        num_clouds, num_users = instance.num_clouds, instance.num_users
        x_prev = np.zeros((num_clouds, num_users))
        slots: list[np.ndarray] = []
        self.last_solves = []
        for t in range(instance.num_slots):
            x_opt, result = self.step(instance, t, x_prev)
            slots.append(x_opt)
            self.last_solves.append(result)
            x_prev = x_opt
        return AllocationSchedule.from_slots(slots)

    @staticmethod
    def _warm_start_point(
        subproblem: RegularizedSubproblem, x_prev: np.ndarray
    ) -> np.ndarray:
        """Blend the previous optimum with the canonical interior point.

        x_prev is feasible (Theorem 1) but may sit on the boundary (zero
        entries, tight demand rows); a small convex combination with the
        strictly interior point restores strict feasibility.
        """
        interior = subproblem.interior_point()
        blend = 0.9 * np.asarray(x_prev, dtype=float).ravel() + 0.1 * interior
        return blend
