"""The paper's online algorithm (Section III-B).

At the start of each slot t, observe the attachments l_{j,t} and prices
a_{i,t}, build the regularized subproblem P2 from the previous decision
x*_{t-1} (with x*_0 = 0), solve it optimally with a convex backend, and
output x*_t. Theorem 1 guarantees the resulting trajectory is feasible for
P0/P1; Theorem 2 bounds its competitive ratio by 1 + gamma |I|.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # import cycle: simulation/aggregate build on core
    from ..aggregate.config import AggregationConfig
    from ..aggregate.controller import AggregatedController
    from ..simulation.controllers import RegularizedController
    from ..simulation.observations import SystemDescription

from ..solvers.base import ConvexBackend, SolveBudget, SolverResult
from ..solvers.registry import default_backend
from ..telemetry import get_registry
from .allocation import AllocationSchedule
from .problem import ProblemInstance
from .subproblem import RegularizedSubproblem

#: Default regularization parameters; Figure 4 sweeps them over [1e-3, 1e3].
DEFAULT_EPSILON = 1.0


def _repair_feasibility(
    x: np.ndarray, instance: ProblemInstance, slot: int = 0
) -> np.ndarray:
    """Project a numerically-converged P2 solution onto exact feasibility.

    Iterative solvers satisfy the binding demand constraints only up to
    their tolerance. Clip negatives and scale each deficient user's
    allocation up by the (tiny) missing factor; the capacity headroom of P2
    optima (Theorem 1 keeps them strictly inside whenever the instance is
    overprovisioned) absorbs the adjustment.
    """
    x = np.maximum(x, 0.0)
    workloads = np.asarray(instance.workloads, dtype=float)
    totals = x.sum(axis=0)
    deficient = totals < workloads
    if np.any(deficient):
        scale = np.ones_like(totals)
        positive = totals > 0
        scale[deficient & positive] = (
            workloads[deficient & positive] / totals[deficient & positive]
        )
        x = x * scale[None, :]
        # A user with an all-zero column (cannot happen at a P2 optimum, but
        # guard anyway) gets its workload at its attached cloud's column.
        attachment = np.asarray(instance.attachment)[slot]
        for j in np.nonzero(deficient & ~positive)[0]:
            x[int(attachment[j]), j] = workloads[j]
    return x


@dataclass
class OnlineRegularizedAllocator:
    """online-approx: solve the regularized subproblem P2 in every slot.

    Attributes:
        eps1: regularizer parameter for the reconfiguration term.
        eps2: regularizer parameter for the migration term.
        backend: convex backend used to solve P2 (default: registry default).
        tol: optimizer tolerance per subproblem.
        warm_start: start each solve from the previous slot's solution
            (projected into the interior) instead of the canonical interior
            point; identical optima, usually fewer iterations.
        certify: compute a per-slot optimality certificate (KKT residual +
            duality-gap bound, see :mod:`repro.diagnostics.certificates`)
            after every solve, record it into the active telemetry
            registry, and keep it on ``last_certificates``. Pure
            observation — decisions and costs are bit-identical either
            way.
        aggregation: when set, :meth:`as_controller` returns the
            cohort-aggregated controller (:mod:`repro.aggregate`) instead
            of the per-user one: users are clustered by (station,
            workload bucket), the reduced P2 is solved — optionally
            sharded across processes — and the solution is split back to
            users. ``None`` (the default) keeps the exact per-user solve.
        budget: optional per-solve :class:`SolveBudget` (deadline and/or
            iteration cap) for live serving. When the budget fires the
            backend returns its last strictly feasible barrier iterate;
            :meth:`step` then repairs it and takes the cheaper of that
            iterate and the attached-cloud allocation — the degradation
            ladder of docs/SERVING.md. ``None`` (the default) is
            bit-identical to the unbudgeted solve.
    """

    eps1: float = DEFAULT_EPSILON
    eps2: float = DEFAULT_EPSILON
    backend: ConvexBackend | None = None
    tol: float = 1e-8
    warm_start: bool = True
    certify: bool = False
    aggregation: "AggregationConfig | None" = None
    budget: SolveBudget | None = None
    name: str = "online-approx"
    #: Per-slot solver results from the most recent run (diagnostics).
    last_solves: list[SolverResult] = field(default_factory=list, repr=False)
    #: Per-slot optimality certificates of the most recent run (populated
    #: only when ``certify`` is set).
    last_certificates: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.eps1 <= 0 or self.eps2 <= 0:
            raise ValueError("eps1 and eps2 must be positive")
        if self.tol <= 0:
            raise ValueError("tol must be positive")

    def _resolve_backend(self) -> ConvexBackend:
        return self.backend if self.backend is not None else default_backend()

    def step(
        self,
        instance: ProblemInstance,
        slot: int,
        x_prev: np.ndarray,
        *,
        warm: bool | None = None,
    ) -> tuple[np.ndarray, SolverResult]:
        """Solve P2 for one slot; returns (x*_t as (I, J), solver result).

        Args:
            instance: the problem instance (or a one-slot wrapper of an
                observation).
            slot: which slot of ``instance`` to solve.
            x_prev: the previous slot's decision x*_{t-1}.
            warm: override for warm starting. By default slot 0 starts cold
                and later slots warm-start (when ``self.warm_start``); a
                streaming controller always solves slot 0 of a one-slot
                instance, so it passes the trajectory position explicitly.
        """
        subproblem = RegularizedSubproblem.from_instance(
            instance, slot, x_prev, eps1=self.eps1, eps2=self.eps2
        )
        if warm is None:
            warm = self.warm_start and slot > 0
        x0 = self._warm_start_point(subproblem, x_prev) if warm else None
        program = subproblem.build_program(x0=x0)
        if self.budget is not None:
            program.budget = self.budget
        result = self._resolve_backend().solve(program, tol=self.tol)
        if self.certify:
            # Certify at the solver's own point (pre-repair) with its own
            # multipliers. Deferred import: core must not depend on the
            # diagnostics layer at module scope.
            from ..diagnostics.certificates import (
                certify_solution,
                record_certificate,
            )

            certificate = certify_solution(
                subproblem, result, slot=len(self.last_certificates)
            )
            self.last_certificates.append(certificate)
            record_certificate(certificate)
        x_opt = result.x.reshape(instance.num_clouds, instance.num_users)
        x_opt = _repair_feasibility(x_opt, instance, slot)
        if result.partial:
            x_opt = self._degrade_partial(x_opt, subproblem, instance, slot)
        return x_opt, result

    def _degrade_partial(
        self,
        x_opt: np.ndarray,
        subproblem: RegularizedSubproblem,
        instance: ProblemInstance,
        slot: int,
    ) -> np.ndarray:
        """The degradation ladder for budget-truncated solves.

        A partial barrier iterate is always feasible but can be far from
        the optimum when the budget fires early. The attached-cloud
        allocation (every user's whole workload at its current station)
        is the natural "no optimization at all" reference, so take
        whichever of the two has the lower P2 value — this guarantees a
        partial slot never costs more than the trivial repair would,
        whenever that repair is itself capacity-feasible.
        """
        attachment = np.asarray(instance.attachment)[slot]
        workloads = np.asarray(instance.workloads, dtype=float)
        attached = np.zeros_like(x_opt)
        attached[attachment, np.arange(attached.shape[1])] = workloads
        over = attached.sum(axis=1) - np.asarray(instance.capacities, dtype=float)
        if float(over.max(initial=0.0)) > 1e-9:
            return x_opt
        if subproblem.objective(attached.ravel()) < subproblem.objective(
            x_opt.ravel()
        ):
            get_registry().counter("solver.partial.attached_repair").inc()
            return attached
        return x_opt

    @property
    def total_solver_iterations(self) -> int:
        """Summed backend iterations of the most recent run (diagnostics)."""
        return sum(result.iterations for result in self.last_solves)

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Run the online algorithm over the whole horizon of the instance.

        A thin adapter over the streaming spine: the batch schedule is the
        controller form driven over the instance's observation stream, so
        both execution modes are the same code path.
        """
        from ..simulation.spine import run_on_spine

        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_controller(
        self, system: "SystemDescription"
    ) -> "RegularizedController | AggregatedController":
        """The causal (streaming) form of this algorithm.

        With ``aggregation`` set, the controller solves the cohort-reduced
        P2 and disaggregates (see :mod:`repro.aggregate`).
        """
        from ..simulation.controllers import RegularizedController

        controller = RegularizedController(system=system, algorithm=self)
        if self.aggregation is not None:
            return controller.aggregated(self.aggregation)
        return controller

    @staticmethod
    def _warm_start_point(
        subproblem: RegularizedSubproblem, x_prev: np.ndarray
    ) -> np.ndarray:
        """Blend the previous optimum with the canonical interior point.

        x_prev is feasible (Theorem 1) but may sit on the boundary (zero
        entries, tight demand rows); a small convex combination with the
        strictly interior point restores strict feasibility.
        """
        interior = subproblem.interior_point()
        blend = 0.9 * np.asarray(x_prev, dtype=float).ravel() + 0.1 * interior
        return blend
