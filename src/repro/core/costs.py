"""The four cost functions of the paper's model (Section II-C).

Every function returns *per-slot* unweighted costs; :class:`CostBreakdown`
assembles them and applies the static/dynamic weights to produce the P0
objective. Dynamic costs for the first slot are charged against the paper's
all-zero slot-0 baseline (x_{i,j,0} = 0).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .allocation import AllocationSchedule
from .problem import CostWeights, ProblemInstance


def positive_part(values: np.ndarray) -> np.ndarray:
    """The paper's (x)+ = max(x, 0), elementwise."""
    return np.maximum(values, 0.0)


def operation_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> np.ndarray:
    """Cost_op per slot: Sum_i Sum_j a_{i,t} x_{i,j,t} (eq. 1)."""
    cloud_totals = schedule.cloud_totals()  # (T, I)
    return np.einsum("ti,ti->t", np.asarray(instance.op_prices, dtype=float), cloud_totals)


def service_quality_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> np.ndarray:
    """Cost_sq per slot (eq. 3): access delay + weighted inter-cloud delay.

    Per slot t: Sum_j ( d(j, l_{j,t}) + Sum_i x_{i,j,t} d(l_{j,t}, i) / lambda_j ).
    """
    x = schedule.x
    attachment = np.asarray(instance.attachment)
    delay = np.asarray(instance.inter_cloud_delay, dtype=float)
    workloads = np.asarray(instance.workloads, dtype=float)
    per_slot = np.asarray(instance.access_delay, dtype=float).sum(axis=1)
    # d(l_{j,t}, i) for each (t, i, j): index delay rows by attachment.
    # delay[:, attachment] has shape (I, T, J) -> transpose to (T, I, J).
    d_att = np.transpose(delay[:, attachment], (1, 0, 2))
    per_slot = per_slot + np.einsum("tij,tij->t", x, d_att / workloads[None, None, :])
    return per_slot


def reconfiguration_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> np.ndarray:
    """Cost_rc per slot (eq. 2): c_i (x_{i,t} - x_{i,t-1})+ summed over clouds."""
    totals = schedule.cloud_totals()
    prev = np.zeros_like(totals)
    prev[1:] = totals[:-1]
    increase = positive_part(totals - prev)
    return increase @ np.asarray(instance.reconfig_prices, dtype=float)


def migration_volumes(schedule: AllocationSchedule) -> tuple[np.ndarray, np.ndarray]:
    """Per-cloud migration volumes (eq. 4): (z_out, z_in), each (T, I).

    z_{i,t}^out = Sum_j (x_{i,j,t-1} - x_{i,j,t})+ and
    z_{i,t}^in  = Sum_j (x_{i,j,t} - x_{i,j,t-1})+.
    """
    x, prev = schedule.with_previous()
    z_out = positive_part(prev - x).sum(axis=2)
    z_in = positive_part(x - prev).sum(axis=2)
    return z_out, z_in


def migration_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> np.ndarray:
    """Cost_mg per slot (eq. 5): b_i^out z_out + b_i^in z_in."""
    z_out, z_in = migration_volumes(schedule)
    prices = instance.migration_prices
    return z_out @ np.asarray(prices.out, dtype=float) + z_in @ np.asarray(prices.into, dtype=float)


@dataclass(frozen=True)
class CostBreakdown:
    """Per-slot unweighted costs plus the weights needed for the P0 objective.

    Attributes:
        operation, service_quality, reconfiguration, migration: (T,) arrays.
        weights: the static/dynamic weights of the owning instance.
    """

    operation: np.ndarray
    service_quality: np.ndarray
    reconfiguration: np.ndarray
    migration: np.ndarray
    weights: CostWeights

    def __post_init__(self) -> None:
        shape = np.asarray(self.operation).shape
        for name in ("service_quality", "reconfiguration", "migration"):
            if np.asarray(getattr(self, name)).shape != shape:
                raise ValueError("all per-slot cost arrays must share a shape")

    @property
    def num_slots(self) -> int:
        return int(np.asarray(self.operation).shape[0])

    @property
    def static_per_slot(self) -> np.ndarray:
        """Unweighted static cost per slot: Cost_op + Cost_sq."""
        return self.operation + self.service_quality

    @property
    def dynamic_per_slot(self) -> np.ndarray:
        """Unweighted dynamic cost per slot: Cost_rc + Cost_mg."""
        return self.reconfiguration + self.migration

    @property
    def total_per_slot(self) -> np.ndarray:
        """Weighted total cost per slot (the P0 objective, sliced by slot)."""
        return (
            self.weights.static * self.static_per_slot
            + self.weights.dynamic * self.dynamic_per_slot
        )

    @property
    def total(self) -> float:
        """The P0 objective value: weighted static + dynamic cost over time."""
        return float(self.total_per_slot.sum())

    def totals(self) -> dict[str, float]:
        """Summed unweighted components plus the weighted total, by name."""
        return {
            "operation": float(self.operation.sum()),
            "service_quality": float(self.service_quality.sum()),
            "reconfiguration": float(self.reconfiguration.sum()),
            "migration": float(self.migration.sum()),
            "static": float(self.static_per_slot.sum()),
            "dynamic": float(self.dynamic_per_slot.sum()),
            "total": self.total,
        }


def cost_breakdown(schedule: AllocationSchedule, instance: ProblemInstance) -> CostBreakdown:
    """Evaluate all four cost families of a schedule on an instance."""
    if schedule.x.shape != (instance.num_slots, instance.num_clouds, instance.num_users):
        raise ValueError(
            f"allocation shape {schedule.x.shape} does not match instance "
            f"({instance.num_slots}, {instance.num_clouds}, {instance.num_users})"
        )
    return CostBreakdown(
        operation=operation_cost(schedule, instance),
        service_quality=service_quality_cost(schedule, instance),
        reconfiguration=reconfiguration_cost(schedule, instance),
        migration=migration_cost(schedule, instance),
        weights=instance.weights,
    )


def total_cost(schedule: AllocationSchedule, instance: ProblemInstance) -> float:
    """The P0 objective of a schedule (weighted sum of all four costs)."""
    return cost_breakdown(schedule, instance).total
