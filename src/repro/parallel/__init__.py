"""Parallel sweep execution for the experiment grid.

Every figure of the paper is a sweep of independent (algorithm roster x
instance) cells; this package fans those cells across a process pool with
deterministic per-cell seeds, so parallel runs are bit-for-bit identical
to serial ones. See docs/PARALLEL.md.
"""

from .executor import (
    CellResult,
    SweepCell,
    SweepError,
    SweepExecutor,
    comparisons_or_raise,
    resolve_workers,
)

__all__ = [
    "CellResult",
    "SweepCell",
    "SweepError",
    "SweepExecutor",
    "comparisons_or_raise",
    "resolve_workers",
]
