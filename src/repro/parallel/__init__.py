"""Parallel sweep execution for the experiment grid.

Every figure of the paper is a sweep of independent (algorithm roster x
instance) cells; this package fans those cells across a process pool with
deterministic per-cell seeds, so parallel runs are bit-for-bit identical
to serial ones. See docs/PARALLEL.md.

The executor itself is a generic dependency leaf; the simulation-specific
:class:`SweepCell` lives in :mod:`repro.simulation.cells` and is re-exported
here lazily for backwards compatibility.
"""

from .executor import (
    CellResult,
    SweepError,
    SweepExecutor,
    comparisons_or_raise,
    resolve_workers,
)
from .shm import ItemRef, ResultArena, WorkArena, decode_item, encode_items

__all__ = [
    "CellResult",
    "ItemRef",
    "ResultArena",
    "SweepCell",
    "SweepError",
    "SweepExecutor",
    "WorkArena",
    "comparisons_or_raise",
    "decode_item",
    "encode_items",
    "resolve_workers",
]


def __getattr__(name: str):
    """Lazily re-export :class:`SweepCell` without importing the simulation
    layer (which builds on this package) at module scope."""
    if name == "SweepCell":
        from ..simulation.cells import SweepCell

        return SweepCell
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
