"""Zero-copy work dispatch over ``multiprocessing.shared_memory``.

The classic pool path pickles every work item into the submit pipe, so
dispatch cost grows with instance size: a city-scale scenario re-serializes
megabytes of arrays per cell. This module removes the array bytes from the
pipe entirely:

1. the parent pickles each item **once** with protocol 5, diverting every
   contiguous array buffer out-of-band via ``buffer_callback``;
2. all diverted buffers land back-to-back (8-byte aligned) in a single
   :class:`~multiprocessing.shared_memory.SharedMemory` arena per map call;
3. what travels through the pool pipe is only the tiny pickle skeleton plus
   ``(offset, length)`` spans — constant-size, independent of the arrays;
4. workers attach the arena by name (cached per process) and unpickle with
   ``buffers=`` pointing straight into the shared mapping — zero copies.

Results come home the same way in reverse: the parent preallocates one
fixed-size slot per item in a writable result arena; each worker pickles
its :class:`~repro.parallel.executor.CellResult` into its own slot (slots
are disjoint, so no locking), and oversized results transparently fall
back to the ordinary pickle return path.

**Bit-identity.** Unpickling from the arena reconstructs arrays with the
same dtype/shape/strides/bytes as the pickled path — the only observable
difference is ``writeable=False``: worker-side views alias the shared
mapping, so the arena hands out read-only buffers and any would-be
mutation of a work item (which would silently diverge under the
copy-per-worker pickle path) raises loudly instead. Cells are pure
functions of their inputs by contract (docs/PARALLEL.md), so the paths are
bit-for-bit equivalent — pinned by ``tests/test_parallel.py``.

Lifetime: the parent creates and unlinks both arenas; workers attach and
immediately deregister from the ``resource_tracker`` (Python registers
every attach for leak tracking, and a tracked attach in a pool worker
would double-unlink the parent's segment on worker exit).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Sequence

_ALIGN = 8

#: Worker-side cache of attached arenas, keyed by segment name: a pool
#: worker executes many cells of the same map call and must pay the
#: attach syscall once, not per cell.
_ATTACHED: dict[str, shared_memory.SharedMemory] = {}

#: Names of segments *created* by this process. An attach from a process
#: that also owns the segment (inline fallback, tests) must not touch the
#: resource tracker — the owner's registration has to survive until
#: ``unlink``.
_OWNED: set[str] = set()


def _attach(name: str) -> shared_memory.SharedMemory:
    segment = _ATTACHED.get(name)
    if segment is None:
        segment = shared_memory.SharedMemory(name=name)
        if name not in _OWNED:
            # Python 3.11 has no track= parameter: attaching registers
            # the segment with this process's resource tracker, which
            # would unlink it on worker exit even though the parent still
            # owns it (bpo-39959).
            resource_tracker.unregister(segment._name, "shared_memory")  # noqa: SLF001
        _ATTACHED[name] = segment
    return segment


def detach_all() -> None:
    """Close every cached worker-side attachment (test isolation hook)."""
    for segment in _ATTACHED.values():
        try:
            segment.close()
        except BufferError:  # decoded arrays still alive — leave it mapped
            pass
    _ATTACHED.clear()


@dataclass(frozen=True)
class ItemRef:
    """One work item as it travels through the pool pipe.

    Attributes:
        payload: the protocol-5 pickle skeleton (no array bytes).
        spans: per out-of-band buffer, its ``(offset, length)`` in the arena.
    """

    payload: bytes
    spans: tuple[tuple[int, int], ...]


@dataclass
class WorkArena:
    """Parent-side owner of the read-only arena holding all item buffers."""

    segment: shared_memory.SharedMemory | None
    refs: list[ItemRef]

    @property
    def name(self) -> str | None:
        return None if self.segment is None else self.segment.name

    def close(self) -> None:
        """Unlink the shared segment; idempotent once closed."""
        if self.segment is not None:
            _OWNED.discard(self.segment.name)
            self.segment.close()
            self.segment.unlink()
            self.segment = None


def encode_items(items: Sequence[Any]) -> WorkArena:
    """Serialize items once, array buffers into one shared arena.

    Items whose arrays are non-contiguous (or items with no arrays at all)
    simply keep those bytes in the pickle skeleton — protocol 5 only
    diverts what it can share — so every picklable item is accepted.
    """
    payloads: list[bytes] = []
    item_buffers: list[list[pickle.PickleBuffer]] = []
    total = 0
    sizes: list[list[int]] = []
    for item in items:
        buffers: list[pickle.PickleBuffer] = []
        payloads.append(
            pickle.dumps(item, protocol=5, buffer_callback=buffers.append)
        )
        item_buffers.append(buffers)
        lane_sizes = [buf.raw().nbytes for buf in buffers]
        sizes.append(lane_sizes)
        for nbytes in lane_sizes:
            total += -(-nbytes // _ALIGN) * _ALIGN
    segment = None
    if total:
        segment = shared_memory.SharedMemory(create=True, size=total)
        _OWNED.add(segment.name)
    refs: list[ItemRef] = []
    cursor = 0
    for payload, buffers, lane_sizes in zip(payloads, item_buffers, sizes):
        spans: list[tuple[int, int]] = []
        for buf, nbytes in zip(buffers, lane_sizes):
            if nbytes:
                segment.buf[cursor : cursor + nbytes] = buf.raw().cast("B")
            spans.append((cursor, nbytes))
            cursor += -(-nbytes // _ALIGN) * _ALIGN
            buf.release()
        refs.append(ItemRef(payload=payload, spans=tuple(spans)))
    return WorkArena(segment=segment, refs=refs)


def decode_item(arena_name: str | None, ref: ItemRef) -> Any:
    """Worker-side: rebuild one item, arrays aliasing the shared arena."""
    if not ref.spans:
        return pickle.loads(ref.payload)
    segment = _attach(arena_name)
    view = memoryview(segment.buf).toreadonly()
    buffers = [view[offset : offset + length] for offset, length in ref.spans]
    return pickle.loads(ref.payload, buffers=buffers)


# ----- result slots -----------------------------------------------------------

#: Default per-item result slot. Sweep cells return a Comparison plus a
#: telemetry snapshot — typically tens of KiB; anything larger falls back
#: to the ordinary pickle return transparently.
DEFAULT_SLOT_BYTES = 1 << 18

_LEN_BYTES = 8


@dataclass
class ResultArena:
    """Preallocated per-item result slots in a writable shared segment.

    Slot ``k`` spans ``[k * slot_bytes, (k + 1) * slot_bytes)`` and is
    written only by the worker executing item ``k`` — disjoint slots need
    no locking. Layout per slot: 8-byte big-endian payload length, then
    the pickled result. Length 0 means "did not fit, returned via pipe".
    """

    slots: int
    slot_bytes: int = DEFAULT_SLOT_BYTES
    segment: shared_memory.SharedMemory = field(init=False)

    def __post_init__(self) -> None:
        self.segment = shared_memory.SharedMemory(
            create=True, size=max(1, self.slots * self.slot_bytes)
        )
        _OWNED.add(self.segment.name)

    @property
    def name(self) -> str:
        return self.segment.name

    def read_slot(self, index: int) -> Any | None:
        """Parent-side: the slot's result, or ``None`` if it did not fit."""
        base = index * self.slot_bytes
        buf = self.segment.buf
        length = int.from_bytes(buf[base : base + _LEN_BYTES], "big")
        if length == 0:
            return None
        start = base + _LEN_BYTES
        return pickle.loads(bytes(buf[start : start + length]))

    def close(self) -> None:
        """Unlink the result segment once every slot has been read."""
        _OWNED.discard(self.segment.name)
        self.segment.close()
        self.segment.unlink()


def write_result(
    arena_name: str, slot_bytes: int, index: int, value: Any
) -> bool:
    """Worker-side: pickle ``value`` into slot ``index`` if it fits."""
    payload = pickle.dumps(value, protocol=5)
    if len(payload) > slot_bytes - _LEN_BYTES:
        return False
    segment = _attach(arena_name)
    base = index * slot_bytes
    segment.buf[base : base + _LEN_BYTES] = len(payload).to_bytes(
        _LEN_BYTES, "big"
    )
    segment.buf[base + _LEN_BYTES : base + _LEN_BYTES + len(payload)] = payload
    return True
