"""The sweep executor: fan independent experiment cells across processes.

Design goals (docs/PARALLEL.md):

* **Determinism** — a cell is a pure function of (scenario, algorithms,
  seed); the executor never shares mutable state between cells, so serial
  and parallel execution produce bit-for-bit identical results and the
  output order always matches the input order.
* **Graceful degradation** — ``max_workers=1`` runs inline with no pool;
  platforms where a process pool cannot be created (or where the work does
  not pickle) fall back to the same inline path, announced by a one-time
  ``RuntimeWarning`` and a ``parallel.fallback.inline`` telemetry event so
  degraded fan-out is visible in ``doctor``/``watch``.
* **Zero-copy dispatch** — ``use_shm=True`` ships work items through a
  ``multiprocessing.shared_memory`` arena (serialized once, workers attach
  zero-copy; results return via preallocated slots), so dispatch cost no
  longer scales with instance size (:mod:`repro.parallel.shm`).
* **Structured failure** — a cell that raises is captured as a
  :class:`CellResult` carrying the error string and traceback instead of
  poisoning the whole sweep or hanging the pool.

Cells must be picklable on the pool path: scenarios, problem instances and
the bundled algorithms are all plain dataclasses of arrays, so everything
in this project qualifies.

This module is a generic dependency leaf — it knows nothing about
scenarios or simulations. The simulation-specific cell type lives in
:mod:`repro.simulation.cells` (re-exported here for compatibility); any
object with ``key`` and ``execute()`` works with :meth:`SweepExecutor.run_cells`.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Sequence

from ..telemetry import (
    MetricsRegistry,
    TraceContext,
    current_trace,
    get_registry,
    set_registry,
    telemetry_enabled,
    trace_scope,
    trace_span,
)
from . import shm as shm_transport

if TYPE_CHECKING:  # type-only: the simulation layer builds on this leaf
    from ..simulation.results import Comparison


class SweepError(RuntimeError):
    """Raised when a sweep is asked to deliver results but some cells failed."""


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker-count request (``None``/``0`` = all visible CPUs)."""
    if workers is None or workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be positive or None, got {workers}")
    return int(workers)


@dataclass(frozen=True)
class CellResult:
    """Outcome of one cell: a payload or a structured failure, plus timing.

    Attributes:
        key: the cell's identifier (input order is also preserved).
        value: whatever the cell returned (a :class:`Comparison` for
            :class:`SweepCell` work), or ``None`` on failure.
        error: ``"ExcType: message"`` when the cell raised, else ``None``.
        traceback: full formatted traceback of the failure, else ``None``.
        wall_time_s: wall-clock seconds spent inside the cell.
        pid: OS process id that executed the cell (the parent's pid on the
            serial path — useful when checking work really fanned out).
        telemetry: when telemetry was active at dispatch, the picklable
            snapshot of everything the cell recorded (the caller merges
            these deterministically in input order); ``None`` otherwise.
    """

    key: Any
    value: Any
    error: str | None
    traceback: str | None
    wall_time_s: float
    pid: int
    telemetry: dict | None = None

    @property
    def ok(self) -> bool:
        """Whether the cell completed without raising."""
        return self.error is None

    @property
    def comparison(self) -> "Comparison | None":
        """The payload, typed for the common SweepCell case."""
        return self.value


def _execute_one(
    work: Callable[[Any], Any],
    key: Any,
    item: Any,
    telemetry: bool = False,
    trace: "TraceContext | None" = None,
) -> CellResult:
    """Run one unit of work, capturing failures, timing, and telemetry.

    Module-level so the pool can pickle it; shared by the serial path so
    both paths have identical failure semantics. When ``telemetry`` is
    set, the cell runs under a *fresh* registry (on the serial path too,
    so serial and pooled execution aggregate identically) whose snapshot
    rides home on the :class:`CellResult`. When the dispatch site minted a
    ``trace`` context for this cell, it becomes the active context for
    the cell's duration and tags every event the cell records with its
    ``trace_id`` — the dispatch side stamps the matching span ids onto
    the merged cell root, so neither id has to travel back home.
    """
    registry = previous = None
    if telemetry:
        registry = MetricsRegistry()
        previous = set_registry(registry)
    start = time.perf_counter()
    try:
        with ExitStack() as scopes:
            if trace is not None:
                scopes.enter_context(trace_scope(trace))
                if registry is not None:
                    scopes.enter_context(
                        registry.context(trace_id=trace.trace_id)
                    )
            value = work(item)
    except Exception as exc:  # noqa: BLE001 - structured capture is the point
        return CellResult(
            key=key,
            value=None,
            error=f"{type(exc).__name__}: {exc}",
            traceback=traceback.format_exc(),
            wall_time_s=time.perf_counter() - start,
            pid=os.getpid(),
            telemetry=registry.snapshot() if registry is not None else None,
        )
    finally:
        if registry is not None:
            set_registry(previous)
    return CellResult(
        key=key,
        value=value,
        error=None,
        traceback=None,
        wall_time_s=time.perf_counter() - start,
        pid=os.getpid(),
        telemetry=registry.snapshot() if registry is not None else None,
    )


def _execute_cell(cell: Any) -> Any:
    """Run one cell object (anything with ``execute()``); pool-picklable."""
    return cell.execute()


def _execute_one_shm(
    work: Callable[[Any], Any],
    key: Any,
    arena_name: str | None,
    ref: "shm_transport.ItemRef",
    telemetry: bool,
    result_name: str,
    slot_bytes: int,
    slot_index: int,
    trace: "TraceContext | None" = None,
) -> CellResult | None:
    """Pool target for the shared-memory path.

    Decodes the item zero-copy from the work arena, runs the ordinary
    :func:`_execute_one` (identical semantics to every other path), and
    ships the result home through the preallocated slot — returning
    ``None`` through the pipe. A result too big for its slot rides the
    pipe instead, exactly like the classic pool path. The trace context
    (a tiny frozen dataclass of strings) rides the pickled call, not the
    arena — dispatch stays zero-copy for the array bytes.
    """
    item = shm_transport.decode_item(arena_name, ref)
    result = _execute_one(work, key, item, telemetry, trace)
    if shm_transport.write_result(result_name, slot_bytes, slot_index, result):
        return None
    return result


def _wrap_cell_spans(
    result: CellResult, trace: "TraceContext | None" = None
) -> dict:
    """The cell's telemetry snapshot with its spans grouped under one root.

    Worker registries are fresh per cell, so their trace trees would merge
    as an undifferentiated flat list of roots. Wrapping them under a
    ``"cell"`` node keyed by the cell id (and stamped with the worker pid
    and wall time) keeps per-cell structure in merged manifests — which is
    what lets ``repro-edge doctor`` attribute spans on parallel runs.
    When the cell was dispatched with a trace context, its ids are stamped
    onto the root here, at merge time — the same context the worker held,
    so the root's ``span_id`` is exactly the ``parent_span_id`` any span
    the cell recorded will reference, and the root's own
    ``parent_span_id`` points at the dispatch span. That is what lets the
    exporter re-link per-worker forests into one tree.
    """
    snap = result.telemetry
    meta: dict = {"cell": result.key, "pid": result.pid}
    if trace is not None:
        meta.update(trace.as_meta())
    root = {
        "name": "cell",
        "duration_ms": result.wall_time_s * 1000.0,
        "children": list(snap.get("spans", ())),
        "meta": meta,
    }
    return {**snap, "spans": [root]}


_inline_fallback_warned = False


def _note_inline_fallback(exc: Exception, *, cells: int, workers: int) -> None:
    """Make a degraded (inline) fan-out visible instead of silent.

    Every occurrence lands in telemetry as a ``parallel.fallback.inline``
    event plus counter — so ``doctor``/``watch`` surface it on live runs —
    and the first occurrence per process also raises a ``RuntimeWarning``
    for plain scripts with telemetry off. Results are still correct (the
    inline path is the reference semantics); only the speedup is lost.
    """
    global _inline_fallback_warned
    registry = get_registry()
    registry.counter("parallel.fallback.inline").inc()
    registry.event(
        "parallel.fallback.inline",
        error=f"{type(exc).__name__}: {exc}",
        cells=cells,
        workers=workers,
    )
    if not _inline_fallback_warned:
        _inline_fallback_warned = True
        warnings.warn(
            f"parallel fan-out degraded to inline execution "
            f"({type(exc).__name__}: {exc}); results are unaffected but "
            f"the requested {workers} workers are not being used",
            RuntimeWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class SweepExecutor:
    """Run independent work items, optionally across a process pool.

    ``max_workers=1`` (the default) is strictly serial — no pool, no
    pickling, no subprocesses — and is the reference semantics the pool
    path must reproduce exactly. ``max_workers=None`` uses every visible
    CPU.

    Attributes:
        max_workers: worker processes (1 = inline serial execution).
        use_shm: ship work items through a shared-memory arena instead of
            pickling them into the pool pipe (:mod:`repro.parallel.shm`).
            Dispatch cost stops scaling with instance size; results are
            bit-identical. Ignored on the serial path; degrades to the
            classic pickled pool if the platform lacks shared memory.
    """

    max_workers: int | None = 1
    use_shm: bool = False

    @property
    def workers(self) -> int:
        """The resolved worker count (``None``/``0`` = all visible CPUs)."""
        return resolve_workers(self.max_workers)

    def map(
        self, work: Callable[[Any], Any], items: Sequence[Any], *, keys: Sequence[Any] | None = None
    ) -> list[CellResult]:
        """Apply ``work`` to every item; results come back in input order.

        Args:
            work: picklable callable (module-level function) applied per item.
            items: the work items.
            keys: optional per-item identifiers (defaults to the indices).

        Returns:
            One :class:`CellResult` per item, failures captured in place.
        """
        if keys is None:
            keys = list(range(len(items)))
        if len(keys) != len(items):
            raise ValueError("keys and items must have the same length")
        telemetry = telemetry_enabled()
        if telemetry and current_trace() is not None:
            # Tracing active: open a dispatch span and mint one child
            # context per cell under it. The contexts ship out with the
            # work items and are stamped onto the merged cell roots, so
            # the whole fan-out renders as one connected tree.
            with trace_span(
                "sweep.map", cells=len(items), workers=self.workers
            ):
                dispatch = current_trace()
                contexts = [dispatch.child() for _ in items]
                return self._map_with_contexts(
                    work, items, keys, telemetry, contexts
                )
        return self._map_with_contexts(work, items, keys, telemetry, None)

    def _map_with_contexts(
        self,
        work: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Sequence[Any],
        telemetry: bool,
        contexts: "Sequence[TraceContext] | None",
    ) -> list[CellResult]:
        traces: Sequence[TraceContext | None] = (
            contexts if contexts is not None else [None] * len(items)
        )
        if self.workers <= 1 or len(items) <= 1:
            results = [
                _execute_one(work, key, item, telemetry, trace)
                for key, item, trace in zip(keys, items, traces)
            ]
        elif self.use_shm:
            results = self._map_pool_shm(work, items, keys, telemetry, traces)
        else:
            results = self._map_pool(work, items, keys, telemetry, traces)
        if telemetry:
            # Fold per-cell snapshots into the caller's registry in input
            # order — the one fixed order both execution paths share — so
            # aggregates are identical at any worker count.
            registry = get_registry()
            registry.counter("sweep.cells").inc(len(items))
            registry.gauge("sweep.workers").set(self.workers)
            for result, trace in zip(results, traces):
                if result.telemetry is not None:
                    # merge_snapshot routes the cell's events through the
                    # parent registry's sink, so a streaming manifest
                    # receives each worker's stream at merge time — still
                    # in deterministic input order.
                    registry.merge_snapshot(_wrap_cell_spans(result, trace))
                registry.histogram("sweep.cell_wall_s").observe(result.wall_time_s)
            # One flush per sweep: the merged per-worker events become
            # visible to a live watcher as a block once the sweep lands.
            registry.flush()
        return results

    def run_cells(self, cells: Iterable[Any]) -> list[CellResult]:
        """Execute grid cells (anything with ``key`` and ``execute()``).

        The standard cell type is
        :class:`repro.simulation.cells.SweepCell`; keys are taken from the
        cells.
        """
        cells = list(cells)
        return self.map(_execute_cell, cells, keys=[cell.key for cell in cells])

    # ----- pool path ----------------------------------------------------------

    def _map_pool(
        self,
        work: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Sequence[Any],
        telemetry: bool = False,
        traces: "Sequence[TraceContext | None] | None" = None,
    ) -> list[CellResult]:
        if traces is None:
            traces = [None] * len(items)
        try:
            with ProcessPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
                futures = [
                    pool.submit(_execute_one, work, key, item, telemetry, trace)
                    for key, item, trace in zip(keys, items, traces)
                ]
                return [future.result() for future in futures]
        except Exception as exc:  # noqa: BLE001
            # Pool creation or transport failed (no fork/spawn support,
            # unpicklable work, broken pool, ...). The cells themselves never
            # raise out of _execute_one, so anything surfacing here is an
            # infrastructure problem: fall back to the serial reference path,
            # which needs none of that machinery.
            _note_inline_fallback(exc, cells=len(items), workers=self.workers)
            return [
                _execute_one(work, key, item, telemetry, trace)
                for key, item, trace in zip(keys, items, traces)
            ]

    def _map_pool_shm(
        self,
        work: Callable[[Any], Any],
        items: Sequence[Any],
        keys: Sequence[Any],
        telemetry: bool = False,
        traces: "Sequence[TraceContext | None] | None" = None,
    ) -> list[CellResult]:
        """Pool fan-out with shared-memory transport for items and results.

        Work items are serialized once into a read-only arena that workers
        attach zero-copy; results land in preallocated per-item slots. Any
        failure to *create* the arenas degrades to the classic pickled
        pool; transport-or-pool failure after that degrades inline like
        :meth:`_map_pool`.
        """
        if traces is None:
            traces = [None] * len(items)
        try:
            arena = shm_transport.encode_items(items)
        except Exception:  # noqa: BLE001 - no /dev/shm, unpicklable items, ...
            return self._map_pool(work, items, keys, telemetry, traces)
        result_arena = None
        try:
            result_arena = shm_transport.ResultArena(slots=len(items))
            with ProcessPoolExecutor(max_workers=min(self.workers, len(items))) as pool:
                futures = [
                    pool.submit(
                        _execute_one_shm,
                        work,
                        key,
                        arena.name,
                        ref,
                        telemetry,
                        result_arena.name,
                        result_arena.slot_bytes,
                        index,
                        traces[index],
                    )
                    for index, (key, ref) in enumerate(zip(keys, arena.refs))
                ]
                piped = [future.result() for future in futures]
            results = []
            for index, via_pipe in enumerate(piped):
                result = (
                    via_pipe
                    if via_pipe is not None
                    else result_arena.read_slot(index)
                )
                if result is None:  # worker died before writing its slot
                    raise SweepError(f"cell {keys[index]!r} returned no result")
                results.append(result)
            return results
        except Exception as exc:  # noqa: BLE001
            _note_inline_fallback(exc, cells=len(items), workers=self.workers)
            return [
                _execute_one(work, key, item, telemetry, trace)
                for key, item, trace in zip(keys, items, traces)
            ]
        finally:
            arena.close()
            if result_arena is not None:
                result_arena.close()


def comparisons_or_raise(results: Sequence[CellResult]) -> "list[Comparison]":
    """Unwrap cell payloads, raising :class:`SweepError` if any cell failed.

    The error message lists every failed cell's key and error (first
    traceback included) so a single bad cell in a big sweep is diagnosable.
    """
    failed = [result for result in results if not result.ok]
    if failed:
        summary = "; ".join(f"{r.key!r}: {r.error}" for r in failed[:5])
        if len(failed) > 5:
            summary += f"; ... ({len(failed) - 5} more)"
        raise SweepError(
            f"{len(failed)}/{len(results)} sweep cells failed: {summary}\n"
            f"first failure traceback:\n{failed[0].traceback}"
        )
    return [result.value for result in results]
