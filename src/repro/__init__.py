"""repro — reproduction of "Online Resource Allocation for Arbitrary User
Mobility in Distributed Edge Clouds" (ICDCS 2017).

Public API quick tour:

* :class:`repro.ProblemInstance` / :class:`repro.CostWeights` — the model.
* :class:`repro.OnlineRegularizedAllocator` — the paper's online algorithm.
* :mod:`repro.baselines` — offline-opt, online-greedy, perf/oper/stat-opt.
* :class:`repro.Scenario` — Section V-A experiment configurations.
* :func:`repro.compare_algorithms` — run and normalize like Figures 2-5.

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

from .baselines import (
    OfflineOptimal,
    OnlineGreedy,
    OperOpt,
    PerfOpt,
    StatOpt,
    StaticAllocation,
)
from .core import (
    AllocationSchedule,
    CostBreakdown,
    CostWeights,
    OnlineRegularizedAllocator,
    ProblemInstance,
    RegularizedSubproblem,
    competitive_ratio_bound,
    cost_breakdown,
    total_cost,
)
from .parallel import SweepCell, SweepExecutor
from .simulation import (
    Comparison,
    RunResult,
    Scenario,
    aggregate_ratios,
    compare_algorithms,
    run_algorithm,
)
from .telemetry import (
    MetricsRegistry,
    RunRecord,
    read_manifest,
    telemetry_session,
    write_manifest,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationSchedule",
    "Comparison",
    "CostBreakdown",
    "CostWeights",
    "MetricsRegistry",
    "OfflineOptimal",
    "OnlineGreedy",
    "OnlineRegularizedAllocator",
    "OperOpt",
    "PerfOpt",
    "ProblemInstance",
    "RegularizedSubproblem",
    "RunRecord",
    "RunResult",
    "Scenario",
    "StatOpt",
    "StaticAllocation",
    "SweepCell",
    "SweepExecutor",
    "aggregate_ratios",
    "compare_algorithms",
    "competitive_ratio_bound",
    "cost_breakdown",
    "read_manifest",
    "run_algorithm",
    "telemetry_session",
    "total_cost",
    "write_manifest",
    "__version__",
]
