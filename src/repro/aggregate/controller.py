"""The aggregated streaming controller: cluster, solve reduced, disaggregate.

:class:`AggregatedController` is a drop-in :class:`OnlineController`: it
carries the *per-user* previous decision (so cohort membership churn as
users move is handled by simply re-aggregating under each slot's fresh
cohorts), solves the cohort-reduced P2 of :mod:`repro.aggregate.reduced`
through the solver registry — optionally sharded across processes — and
returns the proportionally disaggregated per-user allocation.

Every slot records an ``aggregate.slot`` telemetry event plus
``aggregate.*`` metrics (cohort counts, reduction ratio, disaggregation
error), which ``repro-edge watch`` and ``repro-edge doctor`` surface.
"""

from __future__ import annotations

import numpy as np

from dataclasses import dataclass, field

from ..core.regularization import OnlineRegularizedAllocator
from ..core.subproblem import RegularizedSubproblem
from ..simulation.observations import (
    SlotObservation,
    SystemDescription,
    single_slot_instance,
)
from ..solvers.registry import get_backend
from ..telemetry import get_registry
from .cohorts import BucketSpec, CohortMap, build_cohorts
from .config import AggregationConfig
from .reduced import aggregation_error_bound, reduced_subproblem
from .sharding import solve_sharded

#: Largest I*J for which the exact per-slot disaggregation error (reduced
#: objective vs the true per-user objective at the split) is evaluated;
#: beyond it only the a-priori bound is recorded. 2M elements keeps the
#: evaluation O(instance size) at every figure/test scale while skipping
#: it for million-user city slots.
ERROR_EVAL_LIMIT = 2_000_000


@dataclass(frozen=True)
class SlotAggregationReport:
    """What aggregation did in one slot (also the telemetry event payload).

    Attributes:
        slot: the observed slot index.
        users: J, columns of the full problem.
        cohorts: G, columns actually solved.
        shards: shard count used for the reduced solve.
        spread: worst within-cohort relative workload spread.
        error_bound: epsilon such that the aggregated cost is within
            ``(1 + epsilon)`` of the direct cost (docs/SCALING.md).
        disagg_error: exact relative objective gap between the reduced
            model and the per-user model at the disaggregated point, or
            ``None`` when the slot exceeds ``ERROR_EVAL_LIMIT``.
        iterations: summed solver iterations across shards.
        partial_solves: shard solves truncated by a deadline budget this
            slot (0 without budgets; docs/SERVING.md).
        warm_cohort_hit: whether the previous slot's reduced solution
            seeded this slot's solve (cohort map unchanged).
    """

    slot: int
    users: int
    cohorts: int
    shards: int
    spread: float
    error_bound: float
    disagg_error: float | None
    iterations: int
    partial_solves: int = 0
    warm_cohort_hit: bool = False

    @property
    def reduction_ratio(self) -> float:
        """users / cohorts."""
        return self.users / self.cohorts


def _repair_cohort_feasibility(
    y: np.ndarray, cohorts: CohortMap
) -> np.ndarray:
    """Project a converged reduced solution onto exact cohort feasibility.

    The aggregate analogue of the allocator's ``_repair_feasibility``:
    clip negatives, scale deficient cohorts up into the capacity headroom,
    and give an (unreachable at an optimum) all-zero column its workload
    at the cohort's attached station. Per-user feasibility then follows
    structurally from the proportional split.
    """
    y = np.maximum(y, 0.0)
    workloads = np.asarray(cohorts.workloads, dtype=float)
    totals = y.sum(axis=0)
    deficient = totals < workloads
    if np.any(deficient):
        scale = np.ones_like(totals)
        positive = totals > 0
        scale[deficient & positive] = (
            workloads[deficient & positive] / totals[deficient & positive]
        )
        y = y * scale[None, :]
        stations = np.asarray(cohorts.stations)
        for g in np.nonzero(deficient & ~positive)[0]:
            y[int(stations[g]), g] = workloads[g]
    return y


@dataclass
class AggregatedController:
    """Streaming controller solving P2 over (station, workload) cohorts.

    Construct directly, via
    ``OnlineRegularizedAllocator(aggregation=cfg).as_controller(system)``,
    via ``RegularizedController.aggregated(cfg)``, or per-run with
    ``simulate(..., aggregation=cfg)``.
    """

    system: SystemDescription
    algorithm: OnlineRegularizedAllocator = field(
        default_factory=OnlineRegularizedAllocator
    )
    config: AggregationConfig = field(default_factory=AggregationConfig)
    name: str = "online-approx (aggregated)"
    #: Per-slot aggregation reports of the most recent run (diagnostics).
    last_reports: list[SlotAggregationReport] = field(
        default_factory=list, repr=False
    )

    def __post_init__(self) -> None:
        self._buckets = BucketSpec.from_workloads(
            self.system.workloads, self.config.lambda_buckets
        )
        self._x_prev = self.system.zero_allocation()
        self._slots_seen = 0
        self._min_op_price = float("inf")
        self._clear_solve_caches()

    def _clear_solve_caches(self) -> None:
        """Drop cross-slot solve acceleration state (never affects optima)."""
        self._warm_y: np.ndarray | None = None
        self._warm_signature: tuple | None = None
        self._prev_capacity_duals: np.ndarray | None = None

    @staticmethod
    def _cohort_signature(cohorts: CohortMap) -> tuple:
        """A churn-sensitive key for the cohort map.

        Two slots share a signature exactly when they produce the same
        (station, workload, size) cohort columns — the condition under
        which the previous reduced solution is a meaningful start point.
        """
        return (
            np.asarray(cohorts.stations).tobytes(),
            np.asarray(cohorts.workloads).tobytes(),
            np.asarray(cohorts.sizes).tobytes(),
        )

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Solve the reduced P2 for one slot; return the (I, J) split."""
        workloads = np.asarray(self.system.workloads, dtype=float)
        cohorts = build_cohorts(observation.attachment, workloads, self._buckets)
        x_prev_cohorts = cohorts.aggregate(self._x_prev)
        subproblem = reduced_subproblem(
            self.system,
            observation,
            cohorts,
            x_prev_cohorts,
            eps1=self.algorithm.eps1,
            eps2=self.algorithm.eps2,
        )
        shards = max(1, min(self.config.shards, cohorts.num_cohorts))
        signature = self._cohort_signature(cohorts)
        warm_hint = None
        if (
            self.config.warm_cohorts
            and self._warm_y is not None
            and signature == self._warm_signature
        ):
            warm_hint = self._warm_y
        solve = solve_sharded(
            subproblem,
            shards=shards,
            workers=self.config.workers,
            backend=self.config.backend,
            tol=self.algorithm.tol,
            warm=self.algorithm.warm_start and self._slots_seen > 0,
            warm_hint=warm_hint,
            capacity_duals=self._prev_capacity_duals,
            slicing=self.config.shard_slicing,
            budget=self.algorithm.budget,
            batch_solves=self.config.batch_solves,
        )
        y, iterations = solve.x, solve.iterations
        y = _repair_cohort_feasibility(y, cohorts)
        x_users = cohorts.disaggregate(y)
        if self.config.warm_cohorts:
            self._warm_y = np.array(y, dtype=float)
            self._warm_signature = signature
        self._prev_capacity_duals = solve.capacity_duals

        spread = cohorts.spread(workloads)
        self._min_op_price = min(
            self._min_op_price, float(np.min(np.asarray(observation.op_prices)))
        )
        bound = aggregation_error_bound(
            spread, self.system, min_op_price=self._min_op_price
        )
        disagg_error = self._exact_error(
            observation, subproblem, y, x_users
        )
        report = SlotAggregationReport(
            slot=int(observation.slot),
            users=cohorts.num_users,
            cohorts=cohorts.num_cohorts,
            shards=shards,
            spread=spread,
            error_bound=bound,
            disagg_error=disagg_error,
            iterations=iterations,
            partial_solves=solve.partial_solves,
            warm_cohort_hit=warm_hint is not None,
        )
        self.last_reports.append(report)
        self._record(report)
        self._x_prev = x_users
        self._slots_seen += 1
        return x_users

    def _exact_error(
        self,
        observation: SlotObservation,
        subproblem: RegularizedSubproblem,
        y: np.ndarray,
        x_users: np.ndarray,
    ) -> float | None:
        """Relative gap between the reduced and per-user objectives.

        Evaluates the true per-user P2 objective at the disaggregated
        point against the reduced objective at the cohort point — the
        exact quantity ``aggregation_error_bound`` bounds a-priori. Costs
        one O(I*J) pass, so it is skipped above ``ERROR_EVAL_LIMIT``.
        """
        if self.system.num_clouds * self.system.num_users > ERROR_EVAL_LIMIT:
            return None
        instance = single_slot_instance(self.system, observation)
        user_subproblem = RegularizedSubproblem.from_instance(
            instance,
            0,
            self._x_prev,
            eps1=self.algorithm.eps1,
            eps2=self.algorithm.eps2,
        )
        direct = user_subproblem.objective(np.asarray(x_users).ravel())
        reduced = subproblem.objective(np.asarray(y).ravel())
        return abs(direct - reduced) / max(1.0, abs(direct))

    def _record(self, report: SlotAggregationReport) -> None:
        registry = get_registry()
        if not registry.enabled:
            return
        registry.counter("aggregate.slots").inc()
        registry.gauge("aggregate.reduction_ratio").set(report.reduction_ratio)
        registry.histogram("aggregate.cohorts").observe(float(report.cohorts))
        if report.warm_cohort_hit:
            registry.counter("aggregate.warm_cohort_hits").inc()
        if report.partial_solves:
            registry.counter("aggregate.partial_solves").inc(
                report.partial_solves
            )
        if report.disagg_error is not None:
            registry.histogram("aggregate.disagg_error").observe(
                report.disagg_error
            )
        registry.event(
            "aggregate.slot",
            slot=report.slot,
            users=report.users,
            cohorts=report.cohorts,
            shards=report.shards,
            reduction=report.reduction_ratio,
            spread=report.spread,
            bound=report.error_bound,
            disagg_error=report.disagg_error,
            iterations=report.iterations,
            partials=report.partial_solves,
            warm_cohort=report.warm_cohort_hit,
        )

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = self.system.zero_allocation()
        self._slots_seen = 0
        self._min_op_price = float("inf")
        self.last_reports = []
        self._clear_solve_caches()
        # Same per-run circuit-breaker scoping as RegularizedController.
        reset_circuit = getattr(
            get_backend(self.config.backend), "reset_circuit", None
        )
        if reset_circuit is not None:
            reset_circuit()

    def get_state(self) -> tuple:
        """Snapshot the carried decision plus the solve-acceleration caches.

        The warm-cohort iterate and previous capacity duals are included
        so a resumed run replays the *same* solver start points as the
        uninterrupted one (resume stays bit-comparable, not just
        cost-comparable).
        """
        return (
            self._x_prev.copy(),
            self._slots_seen,
            self._min_op_price,
            None if self._warm_y is None else self._warm_y.copy(),
            self._warm_signature,
            None
            if self._prev_capacity_duals is None
            else self._prev_capacity_duals.copy(),
        )

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`.

        Legacy three-element snapshots (pre warm-cohort caches) restore
        with cold caches — correct, just without the acceleration.
        """
        state = tuple(state)  # type: ignore[arg-type]
        x_prev, slots_seen, min_op_price = state[:3]
        self._x_prev = np.asarray(x_prev, dtype=float).copy()
        self._slots_seen = int(slots_seen)
        self._min_op_price = float(min_op_price)
        self._clear_solve_caches()
        if len(state) >= 6:
            warm_y, warm_signature, prev_duals = state[3:6]
            self._warm_y = (
                None if warm_y is None else np.asarray(warm_y, dtype=float).copy()
            )
            self._warm_signature = warm_signature
            self._prev_capacity_duals = (
                None
                if prev_duals is None
                else np.asarray(prev_duals, dtype=float).copy()
            )
