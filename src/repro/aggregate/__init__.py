"""User aggregation: solve city-scale P2 over (station, workload) cohorts.

Layer map (docs/SCALING.md walks the math):

* :mod:`config` — :class:`AggregationConfig`, the import-light knob bundle;
* :mod:`cohorts` — bucket users into weighted aggregate columns and split
  solutions back proportionally;
* :mod:`reduced` — the cohort-reduced P2 (exact for workload-uniform
  cohorts) and its a-priori cost error bound;
* :mod:`sharding` — partition the reduced solve into cohort blocks across
  worker processes with a deterministic input-order merge;
* :mod:`controller` — the streaming :class:`AggregatedController` wiring
  it all into ``simulate`` plus ``aggregate.*`` telemetry.
"""

from .config import AggregationConfig
from .cohorts import BucketSpec, CohortMap, build_cohorts
from .controller import (
    ERROR_EVAL_LIMIT,
    AggregatedController,
    SlotAggregationReport,
)
from .reduced import aggregation_error_bound, reduced_subproblem
from .sharding import ShardTask, make_shard_tasks, solve_sharded

__all__ = [
    "ERROR_EVAL_LIMIT",
    "AggregatedController",
    "AggregationConfig",
    "BucketSpec",
    "CohortMap",
    "ShardTask",
    "SlotAggregationReport",
    "aggregation_error_bound",
    "build_cohorts",
    "make_shard_tasks",
    "reduced_subproblem",
    "solve_sharded",
]
