"""The cohort-reduced P2 and its cost error bound.

The reduced subproblem is *not* ``RegularizedSubproblem.from_instance`` on
a shrunken instance — three substitutions make the reduction exact for
workload-uniform cohorts (docs/SCALING.md derives each):

* static prices use the cohort's **mean** workload: the delay coefficient
  of an aggregate unit is ``d(station_g, i) / mean_lambda_g``, which is
  exactly the per-user static cost realized by the proportional split;
* the migration regularizer gets a **per-column eps2 vector**
  ``n_g * eps2``: the sum of ``n`` identical members' entropy terms at an
  equal split collapses to one aggregate entropy term at ``n * eps2``,
  and ``tau(Lambda_g, n_g * eps2) = ln(1 + mean_lambda_g / eps2)`` — the
  members' own tau;
* the reconfiguration term needs no change at all (it depends only on
  per-cloud totals, which aggregation preserves).
"""

from __future__ import annotations

import numpy as np

from ..core.subproblem import RegularizedSubproblem
from ..simulation.observations import SlotObservation, SystemDescription
from .cohorts import CohortMap

#: Floor for the static price scale in the error bound's denominator.
_PRICE_FLOOR = 1e-12


def reduced_subproblem(
    system: SystemDescription,
    observation: SlotObservation,
    cohorts: CohortMap,
    x_prev_cohorts: np.ndarray,
    *,
    eps1: float,
    eps2: float,
) -> RegularizedSubproblem:
    """P2 over cohort columns for one slot.

    Args:
        system: the time-invariant system description.
        observation: the slot's observation (op prices; the attachment is
            already folded into ``cohorts``).
        cohorts: the slot's cohort map.
        x_prev_cohorts: (I, G) aggregate of the previous per-user decision
            under *this slot's* cohorts (membership churn is handled by
            re-aggregating the carried per-user state).
        eps1: reconfiguration regularization parameter.
        eps2: per-user migration regularization parameter; the aggregate
            columns carry ``n_g * eps2``.
    """
    weights = system.weights
    mean_lam = cohorts.mean_workloads
    delay = np.asarray(system.inter_cloud_delay, dtype=float)
    delay_to_station = delay[:, np.asarray(cohorts.stations)]  # (I, G)
    op_prices = np.asarray(observation.op_prices, dtype=float)
    static = weights.static * (
        op_prices[:, None] + delay_to_station / mean_lam[None, :]
    )
    migration = np.asarray(system.migration_prices.out, dtype=float) + np.asarray(
        system.migration_prices.into, dtype=float
    )
    return RegularizedSubproblem(
        static_prices=static,
        reconfig_prices=weights.dynamic
        * np.asarray(system.reconfig_prices, dtype=float),
        migration_prices=weights.dynamic * migration,
        capacities=np.asarray(system.capacities, dtype=float),
        workloads=np.asarray(cohorts.workloads, dtype=float),
        x_prev=np.asarray(x_prev_cohorts, dtype=float),
        eps1=eps1,
        eps2=np.asarray(cohorts.sizes, dtype=float) * eps2,
    )


def aggregation_error_bound(
    spread: float, system: SystemDescription, *, min_op_price: float
) -> float:
    """epsilon(r): aggregated cost <= direct cost * (1 + epsilon).

    A Lipschitz perturbation argument (docs/SCALING.md, "Error bound"):
    representing a member workload off by a relative factor ``r`` (the
    within-bucket spread) perturbs its static price coefficient by at most
    a factor ``r``, and can shift at most an ``r`` fraction of its volume
    through the dynamic terms, whose per-unit gradients are bounded by the
    raw prices themselves — ``(c_i / eta_i) ln(1 + C_i/eps1) = c_i`` for
    reconfiguration and ``(b_i / tau_j) ln(1 + lambda_j/eps2) = b_i`` for
    migration. Normalizing by the smallest per-unit static price actually
    payable (the cheapest observed operation price) gives

        epsilon = r * (1 + w_d (max c_i + max b_i) / (w_s min a_{i,t})).

    Exact buckets (``spread == 0``) give ``epsilon == 0``: the reduction
    is cost-exact up to solver tolerance.
    """
    if spread < 0:
        raise ValueError("spread must be nonnegative")
    weights = system.weights
    combined = np.asarray(system.migration_prices.out, dtype=float) + np.asarray(
        system.migration_prices.into, dtype=float
    )
    dynamic_scale = weights.dynamic * (
        float(np.max(np.asarray(system.reconfig_prices, dtype=float)))
        + float(np.max(combined))
    )
    static_floor = max(weights.static * float(min_op_price), _PRICE_FLOOR)
    return float(spread) * (1.0 + dynamic_scale / static_floor)
