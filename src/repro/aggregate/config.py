"""Configuration of the user-aggregation layer (dependency leaf).

This module must stay import-light: :mod:`repro.core.regularization` and
the CLI reference :class:`AggregationConfig` without pulling in the solver
or simulation machinery behind the rest of :mod:`repro.aggregate`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AggregationConfig:
    """How to cluster users into cohorts and shard the reduced solves.

    Attributes:
        lambda_buckets: number of geometric workload buckets per station.
            ``None`` or ``0`` buckets users by *exact* workload value
            (zero within-cohort spread, zero aggregation cost error).
        shards: how many contiguous cohort blocks the reduced subproblem
            is partitioned into (1 = one joint solve). Sharding changes
            the decision boundedly (each shard gets a workload-
            proportional capacity slice and its own regularizer coupling);
            ``shards=1`` is exactly the unsharded solve.
        workers: processes for the shard solves (1 = serial, ``None``/0 =
            all visible CPUs). Worker count NEVER changes the solution —
            shards are merged deterministically in input order, so any
            worker count is bit-for-bit identical at a fixed shard count.
        backend: solver registry name used for the reduced solves (shard
            workers resolve it by name, so it must be registry-known).
        shard_slicing: how shard capacity slices are cut — ``"price"``
            (default) blends toward the previous slot's realized usage
            split, gated by the previous capacity duals;
            ``"proportional"`` keeps the workload-proportional slices.
            Irrelevant at ``shards=1``. See docs/SCALING.md.
        warm_cohorts: reuse the previous slot's *reduced* solution as the
            warm-start point whenever the cohort map is unchanged
            (invalidated automatically on churn); observation-only — the
            solves converge to the same optima either way.
        batch_solves: solve a slot's shards as one stacked batched-IPM
            call in-process instead of fanning them across ``workers``
            processes. Bit-identical to the serial shard loop
            (docs/PERFORMANCE.md); ignored for backends whose fast path
            is not the structured IPM.
    """

    lambda_buckets: int | None = 8
    shards: int = 1
    workers: int | None = 1
    backend: str = "auto"
    shard_slicing: str = "price"
    warm_cohorts: bool = True
    batch_solves: bool = False

    def __post_init__(self) -> None:
        if self.lambda_buckets is not None and self.lambda_buckets < 0:
            raise ValueError("lambda_buckets must be nonnegative or None")
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.workers is not None and self.workers < 0:
            raise ValueError("workers must be nonnegative or None")
        if self.shard_slicing not in ("price", "proportional"):
            raise ValueError(
                "shard_slicing must be 'price' or 'proportional', "
                f"got {self.shard_slicing!r}"
            )
