"""Shard the reduced P2 across cohort blocks and worker processes.

A shard is a contiguous block of cohort columns solved as its own small
P2, with a workload-proportional slice of every cloud's capacity
(``C_i * Lambda_shard / Lambda_total`` — the overprovisioning headroom of
each shard equals the joint problem's, so every shard is strictly
feasible whenever the joint problem is). Shard solutions are concatenated
back in input order.

Two distinct knobs, two distinct contracts:

* ``workers`` (process count) NEVER changes the solution. Each shard is a
  pure function of its task; :class:`repro.parallel.SweepExecutor` merges
  results in input order, so any worker count is bit-for-bit identical at
  a fixed shard count (property-tested in tests/aggregate).
* ``shards`` (block count) changes the solution *boundedly*: splitting
  decouples the reconfiguration regularizer across blocks and pins each
  block's capacity slice. ``shards=1`` is exactly the unsharded solve —
  the capacity scale factor is literally ``1.0``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.subproblem import RegularizedSubproblem
from ..parallel.executor import SweepExecutor
from ..solvers.registry import get_backend

#: Relative slack required of a warm-start point before it is trusted.
_WARM_SLACK = 1e-9

#: Warm-start blend weight toward the previous optimum (rest goes to the
#: canonical interior point), matching OnlineRegularizedAllocator.
_WARM_BLEND = 0.9


@dataclass(frozen=True)
class ShardTask:
    """One shard's solve inputs — a plain bundle of arrays, pool-picklable.

    The solver backend travels by registry *name* so worker processes
    resolve their own instance instead of pickling solver state.
    """

    static_prices: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: np.ndarray
    capacities: np.ndarray
    workloads: np.ndarray
    eps2: np.ndarray
    x_prev: np.ndarray
    eps1: float
    tol: float
    backend: str
    warm: bool


def _warm_start_point(
    subproblem: RegularizedSubproblem, x_prev: np.ndarray
) -> np.ndarray | None:
    """The allocator's interior blend, or ``None`` when it is not usable.

    The shard's capacity slice may cut below what the previous aggregate
    decision put on a cloud, in which case the blend is infeasible for the
    shard and the solve must start cold. The check is deterministic, so
    serial and pooled shard solves make the same choice.
    """
    interior = subproblem.interior_point()
    blend = _WARM_BLEND * np.asarray(x_prev, dtype=float).ravel() + (
        1.0 - _WARM_BLEND
    ) * interior
    x = blend.reshape(subproblem.num_clouds, subproblem.num_users)
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    demand_ok = np.all(x.sum(axis=0) >= workloads * (1.0 + _WARM_SLACK))
    capacity_ok = np.all(x.sum(axis=1) <= capacities * (1.0 - _WARM_SLACK))
    return blend if (demand_ok and capacity_ok) else None


def _solve_shard(task: ShardTask) -> tuple[np.ndarray, int]:
    """Solve one shard; module-level so process pools can pickle it."""
    subproblem = RegularizedSubproblem(
        static_prices=task.static_prices,
        reconfig_prices=task.reconfig_prices,
        migration_prices=task.migration_prices,
        capacities=task.capacities,
        workloads=task.workloads,
        x_prev=task.x_prev,
        eps1=task.eps1,
        eps2=task.eps2,
    )
    x0 = _warm_start_point(subproblem, task.x_prev) if task.warm else None
    program = subproblem.build_program(x0=x0)
    result = get_backend(task.backend).solve(program, tol=task.tol)
    shape = (subproblem.num_clouds, subproblem.num_users)
    return np.asarray(result.x, dtype=float).reshape(shape), int(result.iterations)


def make_shard_tasks(
    subproblem: RegularizedSubproblem,
    shards: int,
    *,
    backend: str = "auto",
    tol: float = 1e-8,
    warm: bool = False,
) -> list[ShardTask]:
    """Partition a reduced subproblem into contiguous shard tasks."""
    num_cols = subproblem.num_users
    shards = max(1, min(int(shards), num_cols))
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    static = np.asarray(subproblem.static_prices, dtype=float)
    x_prev = np.asarray(subproblem.x_prev, dtype=float)
    eps2 = np.broadcast_to(
        np.asarray(subproblem.eps2, dtype=float), (num_cols,)
    )
    total = float(workloads.sum())
    tasks = []
    for block in np.array_split(np.arange(num_cols), shards):
        share = float(workloads[block].sum()) / total
        tasks.append(
            ShardTask(
                static_prices=static[:, block],
                reconfig_prices=np.asarray(subproblem.reconfig_prices, dtype=float),
                migration_prices=np.asarray(
                    subproblem.migration_prices, dtype=float
                ),
                capacities=capacities * share,
                workloads=workloads[block],
                eps2=np.array(eps2[block]),
                x_prev=x_prev[:, block],
                eps1=subproblem.eps1,
                tol=tol,
                backend=backend,
                warm=warm,
            )
        )
    return tasks


def solve_sharded(
    subproblem: RegularizedSubproblem,
    *,
    shards: int = 1,
    workers: int | None = 1,
    backend: str = "auto",
    tol: float = 1e-8,
    warm: bool = False,
) -> tuple[np.ndarray, int]:
    """Solve the reduced P2, optionally split into shards across workers.

    Returns:
        ``(x, iterations)`` — the (I, G) solution assembled from the
        shards in input order, and the summed solver iteration count.

    Raises:
        RuntimeError: when any shard's solve failed (the message carries
            every failed shard's error, first traceback included).
    """
    tasks = make_shard_tasks(
        subproblem, shards, backend=backend, tol=tol, warm=warm
    )
    executor = SweepExecutor(max_workers=workers)
    results = executor.map(
        _solve_shard, tasks, keys=[f"shard-{k}" for k in range(len(tasks))]
    )
    failed = [r for r in results if not r.ok]
    if failed:
        summary = "; ".join(f"{r.key}: {r.error}" for r in failed)
        raise RuntimeError(
            f"{len(failed)}/{len(results)} shard solves failed: {summary}\n"
            f"first failure traceback:\n{failed[0].traceback}"
        )
    blocks = [r.value[0] for r in results]
    iterations = sum(r.value[1] for r in results)
    return np.concatenate(blocks, axis=1), iterations
