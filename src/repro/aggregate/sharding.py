"""Shard the reduced P2 across cohort blocks and worker processes.

A shard is a contiguous block of cohort columns solved as its own small
P2 with a slice of every cloud's capacity. Two slicing policies:

* ``"proportional"`` — ``C_i * Lambda_shard / Lambda_total``: each
  shard inherits the joint problem's overprovisioning headroom, so every
  shard is strictly feasible whenever the joint problem is, but shards
  cannot *concentrate* onto cheap clouds.
* ``"price"`` (default) — blend the proportional slice toward the split
  implied by the *previous slot's* joint decision, gated per cloud by
  the previous capacity duals: clouds whose capacity was binding (large
  dual) follow the optimizer's realized usage split, clouds with slack
  keep the proportional slice. The blend weight is capped at
  ``0.9 * (1 - Lambda/sum(C))`` so every shard keeps a strict share of
  the joint headroom — feasibility is preserved by construction, and
  with no history (slot 0, or no duals) the policy degrades to exactly
  the proportional slice. See docs/SCALING.md.

Two distinct knobs, two distinct contracts:

* ``workers`` (process count) NEVER changes the solution. Each shard is a
  pure function of its task; :class:`repro.parallel.SweepExecutor` merges
  results in input order, so any worker count is bit-for-bit identical at
  a fixed shard count (property-tested in tests/aggregate).
* ``shards`` (block count) changes the solution *boundedly*: splitting
  decouples the reconfiguration regularizer across blocks and pins each
  block's capacity slice. ``shards=1`` is exactly the unsharded solve —
  the capacity scale factor is literally ``1.0`` under either policy.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass

import numpy as np

from ..core.subproblem import RegularizedSubproblem
from ..parallel.executor import SweepExecutor
from ..solvers.base import SolveBudget, SolverError
from ..solvers.batched import solve_batch
from ..solvers.interior_point import InteriorPointBackend
from ..solvers.registry import FallbackBackend, get_backend
from ..telemetry import MetricsRegistry, get_registry

#: Relative slack required of a warm-start point before it is trusted.
_WARM_SLACK = 1e-9

#: Warm-start blend weight toward the previous optimum (rest goes to the
#: canonical interior point), matching OnlineRegularizedAllocator.
_WARM_BLEND = 0.9

#: Per-cloud ceiling on the price-aware blend weight: even a fully
#: binding cloud keeps 5% of its proportional slice, so no shard's
#: capacity on any cloud can be zeroed out by a degenerate usage split.
_PRICE_BLEND_CAP = 0.95

#: Every price-aware shard must keep at least this fraction of the joint
#: problem's relative headroom: with ``op = sum(C)/Lambda``, shard k's
#: slice total is required to be >= ``(1 + 0.1 (op - 1)) Lambda_k``. The
#: blend is scaled back globally (deterministically) until the worst
#: shard meets it, so feasibility never depends on what the duals say.
_PRICE_HEADROOM_KEEP = 0.1


@dataclass(frozen=True)
class ShardTask:
    """One shard's solve inputs — a plain bundle of arrays, pool-picklable.

    The solver backend travels by registry *name* so worker processes
    resolve their own instance instead of pickling solver state.
    """

    static_prices: np.ndarray
    reconfig_prices: np.ndarray
    migration_prices: np.ndarray
    capacities: np.ndarray
    workloads: np.ndarray
    eps2: np.ndarray
    x_prev: np.ndarray
    eps1: float
    tol: float
    backend: str
    warm: bool
    #: Optional explicit warm-start point for this block (e.g. the cached
    #: reduced solution of the previous slot under an unchanged cohort
    #: map); takes precedence over the ``x_prev`` blend when usable.
    warm_point: np.ndarray | None = None
    #: Optional per-shard solve budget (live serving; docs/SERVING.md).
    deadline_s: float | None = None
    max_iterations: int | None = None


@dataclass(frozen=True)
class ShardedSolve:
    """Outcome of :func:`solve_sharded`.

    Iterates as ``(x, iterations)`` for backward compatibility with the
    original two-tuple return, while carrying the extras the streaming
    controller needs: how many shard solves were budget-truncated, and
    the combined capacity duals that seed the *next* slot's price-aware
    slices.
    """

    x: np.ndarray
    iterations: int
    partial_solves: int = 0
    capacity_duals: np.ndarray | None = None

    def __iter__(self):
        yield self.x
        yield self.iterations


def _warm_start_point(
    subproblem: RegularizedSubproblem, x_prev: np.ndarray
) -> np.ndarray | None:
    """The allocator's interior blend, or ``None`` when it is not usable.

    The shard's capacity slice may cut below what the previous aggregate
    decision put on a cloud, in which case the blend is infeasible for the
    shard and the solve must start cold. The check is deterministic, so
    serial and pooled shard solves make the same choice.
    """
    interior = subproblem.interior_point()
    blend = _WARM_BLEND * np.asarray(x_prev, dtype=float).ravel() + (
        1.0 - _WARM_BLEND
    ) * interior
    x = blend.reshape(subproblem.num_clouds, subproblem.num_users)
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    demand_ok = np.all(x.sum(axis=0) >= workloads * (1.0 + _WARM_SLACK))
    capacity_ok = np.all(x.sum(axis=1) <= capacities * (1.0 - _WARM_SLACK))
    return blend if (demand_ok and capacity_ok) else None


def _shard_program(task: ShardTask):
    """Build the shard's subproblem and program exactly as the solve does.

    Shared by the sequential path (:func:`_solve_shard`) and the batched
    path (:func:`_solve_shards_batched`) so both solve literally the same
    program object shape — same warm-start decision, same budget.
    """
    subproblem = RegularizedSubproblem(
        static_prices=task.static_prices,
        reconfig_prices=task.reconfig_prices,
        migration_prices=task.migration_prices,
        capacities=task.capacities,
        workloads=task.workloads,
        x_prev=task.x_prev,
        eps1=task.eps1,
        eps2=task.eps2,
    )
    x0 = None
    if task.warm_point is not None:
        x0 = _warm_start_point(subproblem, task.warm_point)
    if x0 is None and task.warm:
        x0 = _warm_start_point(subproblem, task.x_prev)
    program = subproblem.build_program(x0=x0)
    if task.deadline_s is not None or task.max_iterations is not None:
        program.budget = SolveBudget(
            deadline_s=task.deadline_s, max_iterations=task.max_iterations
        )
    return subproblem, program


def _finish_shard(
    subproblem: RegularizedSubproblem, result
) -> tuple[np.ndarray, int, bool, np.ndarray | None]:
    """Post-process one shard's solver result into the merge tuple."""
    shape = (subproblem.num_clouds, subproblem.num_users)
    capacity_duals = result.duals.get("capacity")
    if capacity_duals is not None:
        capacity_duals = np.asarray(capacity_duals, dtype=float)
        if capacity_duals.shape != (shape[0],):
            capacity_duals = None
    return (
        np.asarray(result.x, dtype=float).reshape(shape),
        int(result.iterations),
        bool(result.partial),
        capacity_duals,
    )


def _solve_shard(task: ShardTask) -> tuple[np.ndarray, int, bool, np.ndarray | None]:
    """Solve one shard; module-level so process pools can pickle it."""
    subproblem, program = _shard_program(task)
    result = get_backend(task.backend).solve(program, tol=task.tol)
    return _finish_shard(subproblem, result)


def _batchable_backend(backend) -> bool:
    """Whether the backend's fast path is the structured IPM we can stack."""
    if isinstance(backend, InteriorPointBackend):
        return True
    return isinstance(backend, FallbackBackend) and isinstance(
        backend.primary, InteriorPointBackend
    )


def _solve_shards_batched(
    tasks: list[ShardTask],
) -> list[tuple[object, str | None, str | None]]:
    """Solve every shard through one stacked batched-IPM call.

    Replicates the sequential path's observable behavior exactly:

    * The stacked solve (:func:`repro.solvers.batched.solve_batch`) is
      bit-identical to per-shard :class:`InteriorPointBackend` solves.
    * Per-shard solver telemetry is buffered in throwaway registries and
      merged into the active registry **in shard order**, so counters and
      the event stream match a serial loop.
    * :class:`FallbackBackend` semantics are preserved without a doomed
      second primary attempt: a failed lane is handed to
      :meth:`FallbackBackend.absorb_primary_failure` (fallback counters,
      circuit-breaker accounting, the secondary solve); a success closes
      the breaker via :meth:`absorb_primary_success`. If the circuit is
      already open when a lane's turn comes, the speculative batched
      attempt is discarded and the sequential skip path runs instead —
      exactly what the serial loop would have done.

    Returns one ``(value, error, traceback)`` triple per task, in order,
    mirroring the executor's structured-failure capture.
    """
    backend = get_backend(tasks[0].backend)
    built = [_shard_program(task) for task in tasks]
    lane_registries = [MetricsRegistry() for _ in tasks]
    outcomes = solve_batch(
        [program for _, program in built],
        tol=[task.tol for task in tasks],
        registries=lane_registries,
    )
    telemetry = get_registry()
    results: list[tuple[object, str | None, str | None]] = []
    for task, (subproblem, program), outcome, lane_registry in zip(
        tasks, built, outcomes, lane_registries
    ):
        try:
            if isinstance(backend, FallbackBackend):
                if backend.circuit_open:
                    # Serial would not have attempted the primary at all;
                    # the lane's speculative result and telemetry are
                    # dropped unseen.
                    result = backend.solve(program, tol=task.tol)
                elif isinstance(outcome, SolverError):
                    telemetry.merge_snapshot(lane_registry.snapshot())
                    result = backend.absorb_primary_failure(
                        program, tol=task.tol, error=outcome
                    )
                elif isinstance(outcome, Exception):
                    raise outcome
                else:
                    telemetry.merge_snapshot(lane_registry.snapshot())
                    result = backend.absorb_primary_success(outcome)
            else:
                telemetry.merge_snapshot(lane_registry.snapshot())
                if isinstance(outcome, Exception):
                    raise outcome
                result = outcome
            results.append((_finish_shard(subproblem, result), None, None))
        except Exception as exc:  # noqa: BLE001 - mirrors executor capture
            results.append(
                (None, f"{type(exc).__name__}: {exc}", traceback.format_exc())
            )
    return results


def shard_capacity_shares(
    subproblem: RegularizedSubproblem,
    blocks: list[np.ndarray],
    *,
    slicing: str = "price",
    capacity_duals: np.ndarray | None = None,
) -> np.ndarray:
    """Per-(cloud, shard) capacity share matrix ``t`` with ``sum_k t = 1``.

    ``"proportional"`` gives every cloud the block's workload fraction.
    ``"price"`` blends, per cloud *i*, toward the previous decision's
    realized usage split ``u_{i,k} / u_i`` with weight
    ``b_i = 0.95 * dual_i / (dual_i + mean(dual))`` — binding clouds
    (large previous capacity dual) follow the optimizer's split, slack
    clouds stay proportional. Feasibility is then enforced *exactly*:
    shard totals are linear in a global blend scale ``theta``, so the
    blend is scaled back just enough that the worst shard keeps
    ``(1 + 0.1 (op - 1))`` times its workload, where ``op`` is the joint
    overprovision ``sum(C)/Lambda`` — every shard stays strictly
    feasible whenever the joint problem is overprovisioned, regardless
    of what the duals or the previous usage look like.
    """
    if slicing not in ("price", "proportional"):
        raise ValueError(
            f"unknown shard slicing {slicing!r}; known: price, proportional"
        )
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    total = float(workloads.sum())
    shares = np.array(
        [float(workloads[block].sum()) / total for block in blocks]
    )
    num_clouds = capacities.shape[0]
    t = np.broadcast_to(shares[None, :], (num_clouds, len(blocks))).copy()
    if slicing == "proportional" or len(blocks) == 1 or capacity_duals is None:
        return t
    duals = np.maximum(np.asarray(capacity_duals, dtype=float), 0.0)
    mean_dual = float(duals.mean())
    if mean_dual <= 0.0:
        return t
    capacity_sum = float(capacities.sum())
    overprovision = capacity_sum / total
    if overprovision <= 1.0:
        return t
    x_prev = np.asarray(subproblem.x_prev, dtype=float)
    usage = np.stack(
        [x_prev[:, block].sum(axis=1) for block in blocks], axis=1
    )  # (I, K)
    cloud_usage = usage.sum(axis=1)  # (I,)
    with np.errstate(invalid="ignore", divide="ignore"):
        usage_split = np.where(
            cloud_usage[:, None] > 0.0,
            usage / np.where(cloud_usage[:, None] > 0.0, cloud_usage[:, None], 1.0),
            t,
        )
    blend = _PRICE_BLEND_CAP * duals / (duals + mean_dual)  # (I,), in [0, 0.95)
    blended = (1.0 - blend)[:, None] * t + blend[:, None] * usage_split
    # Exact feasibility control: shard k's slice total is linear in a
    # global scale theta on the blend, going from the proportional total
    # (theta=0, which has the full joint headroom) to the blended total
    # (theta=1). Scale back to the largest theta keeping every shard at
    # or above its target headroom.
    target = (1.0 + _PRICE_HEADROOM_KEEP * (overprovision - 1.0)) * (
        shares * total
    )  # (K,)
    proportional_totals = shares * capacity_sum
    blended_totals = capacities @ blended
    theta = 1.0
    short = blended_totals < target
    if np.any(short):
        deltas = proportional_totals[short] - blended_totals[short]
        margins = proportional_totals[short] - target[short]
        # deltas > 0 wherever short (proportional totals always exceed
        # the target when overprovisioned); margins >= 0 likewise.
        theta = float(np.min(margins / deltas))
        theta = min(max(theta, 0.0), 1.0)
    if theta >= 1.0:
        return blended
    return (1.0 - theta) * t + theta * blended


def make_shard_tasks(
    subproblem: RegularizedSubproblem,
    shards: int,
    *,
    backend: str = "auto",
    tol: float = 1e-8,
    warm: bool = False,
    warm_hint: np.ndarray | None = None,
    capacity_duals: np.ndarray | None = None,
    slicing: str = "price",
    budget: SolveBudget | None = None,
) -> list[ShardTask]:
    """Partition a reduced subproblem into contiguous shard tasks.

    A supplied ``budget`` is divided evenly across the shards (the shard
    solves of one slot share the slot's deadline); ``warm_hint`` is an
    (I, G) explicit start point sliced per block.
    """
    num_cols = subproblem.num_users
    shards = max(1, min(int(shards), num_cols))
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    static = np.asarray(subproblem.static_prices, dtype=float)
    x_prev = np.asarray(subproblem.x_prev, dtype=float)
    eps2 = np.broadcast_to(
        np.asarray(subproblem.eps2, dtype=float), (num_cols,)
    )
    blocks = np.array_split(np.arange(num_cols), shards)
    shares = shard_capacity_shares(
        subproblem, blocks, slicing=slicing, capacity_duals=capacity_duals
    )
    deadline_s = None
    max_iterations = None
    if budget is not None:
        if budget.deadline_s is not None:
            deadline_s = budget.deadline_s / len(blocks)
        if budget.max_iterations is not None:
            max_iterations = max(1, budget.max_iterations // len(blocks))
    hint = None if warm_hint is None else np.asarray(warm_hint, dtype=float)
    tasks = []
    for k, block in enumerate(blocks):
        tasks.append(
            ShardTask(
                static_prices=static[:, block],
                reconfig_prices=np.asarray(subproblem.reconfig_prices, dtype=float),
                migration_prices=np.asarray(
                    subproblem.migration_prices, dtype=float
                ),
                capacities=capacities * shares[:, k],
                workloads=workloads[block],
                eps2=np.array(eps2[block]),
                x_prev=x_prev[:, block],
                eps1=subproblem.eps1,
                tol=tol,
                backend=backend,
                warm=warm,
                warm_point=None if hint is None else hint[:, block],
                deadline_s=deadline_s,
                max_iterations=max_iterations,
            )
        )
    return tasks


def solve_sharded(
    subproblem: RegularizedSubproblem,
    *,
    shards: int = 1,
    workers: int | None = 1,
    backend: str = "auto",
    tol: float = 1e-8,
    warm: bool = False,
    warm_hint: np.ndarray | None = None,
    capacity_duals: np.ndarray | None = None,
    slicing: str = "price",
    budget: SolveBudget | None = None,
    batch_solves: bool = False,
) -> ShardedSolve:
    """Solve the reduced P2, optionally split into shards across workers.

    With ``batch_solves=True`` (and a backend whose fast path is the
    structured IPM) the shard solves run as **one stacked batched-IPM
    call** in-process instead of fanning across worker processes —
    bit-identical results, one barrier iteration driving every shard
    (docs/PERFORMANCE.md). Unbatchable backends fall back to the
    executor path unchanged.

    Returns:
        A :class:`ShardedSolve` — unpackable as ``(x, iterations)`` —
        whose ``x`` is the (I, G) solution assembled from the shards in
        input order. ``capacity_duals`` (workload-weighted across
        shards) feed the next slot's price-aware slices;
        ``partial_solves`` counts budget-truncated shards.

    Raises:
        RuntimeError: when any shard's solve failed (the message carries
            every failed shard's error, first traceback included).
    """
    tasks = make_shard_tasks(
        subproblem,
        shards,
        backend=backend,
        tol=tol,
        warm=warm,
        warm_hint=warm_hint,
        capacity_duals=capacity_duals,
        slicing=slicing,
        budget=budget,
    )
    if batch_solves and _batchable_backend(get_backend(backend)):
        triples = _solve_shards_batched(tasks)
        failed_triples = [
            (f"shard-{k}", error, tb)
            for k, (_, error, tb) in enumerate(triples)
            if error is not None
        ]
        if failed_triples:
            summary = "; ".join(f"{key}: {error}" for key, error, _ in failed_triples)
            raise RuntimeError(
                f"{len(failed_triples)}/{len(triples)} shard solves failed: "
                f"{summary}\n"
                f"first failure traceback:\n{failed_triples[0][2]}"
            )
        values = [value for value, _, _ in triples]
    else:
        executor = SweepExecutor(max_workers=workers)
        results = executor.map(
            _solve_shard, tasks, keys=[f"shard-{k}" for k in range(len(tasks))]
        )
        failed = [r for r in results if not r.ok]
        if failed:
            summary = "; ".join(f"{r.key}: {r.error}" for r in failed)
            raise RuntimeError(
                f"{len(failed)}/{len(results)} shard solves failed: {summary}\n"
                f"first failure traceback:\n{failed[0].traceback}"
            )
        values = [r.value for r in results]
    blocks = [value[0] for value in values]
    iterations = sum(value[1] for value in values)
    partial_solves = sum(1 for value in values if value[2])
    shard_duals = [value[3] for value in values]
    combined_duals: np.ndarray | None = None
    if all(d is not None for d in shard_duals):
        weights = np.array(
            [float(task.workloads.sum()) for task in tasks], dtype=float
        )
        weights /= max(weights.sum(), 1e-300)
        combined_duals = np.zeros_like(shard_duals[0])
        for weight, duals in zip(weights, shard_duals):
            combined_duals += weight * duals
    return ShardedSolve(
        x=np.concatenate(blocks, axis=1),
        iterations=iterations,
        partial_solves=partial_solves,
        capacity_duals=combined_duals,
    )
