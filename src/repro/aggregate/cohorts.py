"""Cohorts: cluster users by (attached station, workload bucket).

The paper's P2 treats users as interchangeable columns up to their
workload ``lambda_j`` and attachment ``l_{j,t}``: two users with the same
attachment and the same workload enter the objective and constraints
identically. A :class:`CohortMap` exploits this — every (station, bucket)
pair with at least one member becomes one *aggregate column* carrying the
summed workload ``Lambda_g``, and a solved aggregate allocation is split
back to members proportionally to their workloads.

Proportional disaggregation is exact for the static costs (the per-user
static objective at the split equals the reduced static objective — see
docs/SCALING.md for the two-line identity) and feasibility-preserving by
construction: aggregate demand/capacity satisfaction implies per-user
demand/capacity satisfaction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BucketSpec:
    """Workload buckets shared by every slot of a run.

    Geometric edges over the global workload range keep the *relative*
    within-bucket spread uniform across buckets, which is what the cost
    error bound (:func:`repro.aggregate.reduced.aggregation_error_bound`)
    is expressed in. ``edges=None`` is the exact mode: every distinct
    workload value is its own bucket and the spread is zero.
    """

    edges: np.ndarray | None
    values: np.ndarray | None

    @classmethod
    def from_workloads(
        cls, workloads: np.ndarray, num_buckets: int | None
    ) -> "BucketSpec":
        """Build the spec once per run from the (time-invariant) workloads."""
        workloads = np.asarray(workloads, dtype=float)
        if workloads.size == 0:
            raise ValueError("need at least one user to bucket")
        if np.any(workloads <= 0):
            raise ValueError("workloads must be positive")
        if num_buckets is None or num_buckets == 0:
            return cls(edges=None, values=np.unique(workloads))
        lo, hi = float(workloads.min()), float(workloads.max())
        if num_buckets == 1 or hi <= lo:
            edges = np.array([lo, max(hi, lo)])
        else:
            edges = np.geomspace(lo, hi, num_buckets + 1)
        return cls(edges=edges, values=None)

    @property
    def num_buckets(self) -> int:
        if self.edges is None:
            assert self.values is not None
            return int(self.values.size)
        return max(1, int(self.edges.size) - 1)

    def assign(self, workloads: np.ndarray) -> np.ndarray:
        """The bucket index of each workload, shape (J,)."""
        workloads = np.asarray(workloads, dtype=float)
        if self.edges is None:
            assert self.values is not None
            idx = np.searchsorted(self.values, workloads)
            return np.clip(idx, 0, self.values.size - 1)
        idx = np.searchsorted(self.edges, workloads, side="right") - 1
        return np.clip(idx, 0, self.num_buckets - 1)


@dataclass(frozen=True)
class CohortMap:
    """One slot's (station, bucket) clustering of the user population.

    Attributes:
        cohort_of: (J,) cohort index of each user.
        stations: (G,) attached station of each cohort.
        sizes: (G,) member counts n_g.
        workloads: (G,) summed member workloads Lambda_g.
        member_share: (J,) each user's workload fraction of its cohort,
            ``lambda_j / Lambda_{g(j)}`` — the proportional split weights.
    """

    cohort_of: np.ndarray
    stations: np.ndarray
    sizes: np.ndarray
    workloads: np.ndarray
    member_share: np.ndarray

    @property
    def num_cohorts(self) -> int:
        return int(np.asarray(self.stations).size)

    @property
    def num_users(self) -> int:
        return int(np.asarray(self.cohort_of).size)

    @property
    def mean_workloads(self) -> np.ndarray:
        """(G,) mean member workloads Lambda_g / n_g."""
        return np.asarray(self.workloads, dtype=float) / np.asarray(
            self.sizes, dtype=float
        )

    @property
    def reduction_ratio(self) -> float:
        """users / cohorts — how much smaller the reduced P2 is."""
        return self.num_users / self.num_cohorts

    def spread(self, user_workloads: np.ndarray) -> float:
        """Worst within-cohort relative workload spread, max_g (max/min - 1).

        Zero exactly when every cohort is workload-uniform (exact buckets,
        or identical users); this is the ``r`` the cost error bound of
        docs/SCALING.md is a function of.
        """
        lam = np.asarray(user_workloads, dtype=float)
        hi = np.zeros(self.num_cohorts)
        lo = np.full(self.num_cohorts, np.inf)
        np.maximum.at(hi, self.cohort_of, lam)
        np.minimum.at(lo, self.cohort_of, lam)
        return float(np.max(hi / lo) - 1.0)

    def aggregate(self, x_users: np.ndarray) -> np.ndarray:
        """Sum an (I, J) per-user allocation into (I, G) cohort columns."""
        x = np.asarray(x_users, dtype=float)
        out = np.empty((x.shape[0], self.num_cohorts))
        for i in range(x.shape[0]):
            out[i] = np.bincount(
                self.cohort_of, weights=x[i], minlength=self.num_cohorts
            )
        return out

    def disaggregate(self, x_cohorts: np.ndarray) -> np.ndarray:
        """Split an (I, G) cohort allocation back to (I, J) users.

        Each member receives its workload-proportional share of every
        cloud's cohort allocation, so cloud totals are preserved exactly
        and ``aggregate(disaggregate(y)) == y`` up to float summation.
        """
        y = np.asarray(x_cohorts, dtype=float)
        # take + in-place multiply: one (I, J) buffer instead of three,
        # which is the difference between 0.1s and 1s per slot at J=1e6.
        out = y.take(self.cohort_of, axis=1)
        np.multiply(out, np.asarray(self.member_share)[None, :], out=out)
        return out


def build_cohorts(
    attachment: np.ndarray, workloads: np.ndarray, buckets: BucketSpec
) -> CohortMap:
    """Cluster one slot's users into (station, bucket) cohorts.

    Cohort order is deterministic — sorted by (station, bucket) composite
    key via ``np.unique`` — so repeated builds over the same observation
    produce identical maps regardless of user order in memory. Stations
    with no attached users simply contribute no cohorts.
    """
    attachment = np.asarray(attachment)
    lam = np.asarray(workloads, dtype=float)
    if attachment.shape != lam.shape:
        raise ValueError("attachment and workloads must be index-aligned")
    bucket = buckets.assign(lam)
    key = attachment.astype(np.int64) * np.int64(buckets.num_buckets) + bucket
    key_space = (int(key.max()) + 1) if key.size else 0
    if 0 < key_space <= max(1 << 20, key.size):
        # Dense-key path: the (station, bucket) key space is small, so two
        # bincounts replace np.unique's O(J log J) sort. The cohort order
        # (sorted by key) is identical to the np.unique path.
        counts = np.bincount(key, minlength=key_space)
        present = np.nonzero(counts)[0]
        remap = np.zeros(key_space, dtype=np.intp)
        remap[present] = np.arange(present.size)
        cohort_of = remap[key]
        sizes = counts[present]
        cohort_workloads = np.bincount(key, weights=lam, minlength=key_space)[
            present
        ]
        unique_keys = present
    else:
        unique_keys, cohort_of = np.unique(key, return_inverse=True)
        sizes = np.bincount(cohort_of)
        cohort_workloads = np.bincount(cohort_of, weights=lam)
    stations = (unique_keys // buckets.num_buckets).astype(int)
    member_share = lam / cohort_workloads[cohort_of]
    return CohortMap(
        cohort_of=cohort_of,
        stations=stations,
        sizes=sizes,
        workloads=cohort_workloads,
        member_share=member_share,
    )
