"""Shared interface for every allocation algorithm (paper Section V-B).

The evaluation compares two groups:

* **atomistic** — per-slot optimizers of part of the static cost
  (perf-opt, oper-opt, stat-opt);
* **holistic** — offline-opt (full horizon, impractical baseline) and
  online-greedy (per-slot P0 objective), plus the paper's online-approx
  (:class:`repro.core.regularization.OnlineRegularizedAllocator`).

Every algorithm consumes a :class:`ProblemInstance` and produces an
:class:`AllocationSchedule`; all cost accounting happens downstream in
:mod:`repro.core.costs`, so every algorithm is scored by exactly the same
P0 objective.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance


@runtime_checkable
class AllocationAlgorithm(Protocol):
    """Anything that maps a problem instance to a full allocation schedule."""

    name: str

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Produce an allocation for every slot of the instance."""
        ...


def weighted_static_prices(instance: ProblemInstance, slot: int) -> np.ndarray:
    """Static-weight-scaled per-unit prices p_ij for one slot, shape (I, J)."""
    return instance.weights.static * instance.static_prices(slot)


def run_per_slot(
    instance: ProblemInstance,
    solve_slot,
) -> AllocationSchedule:
    """Drive a per-slot decision function over the horizon.

    Args:
        instance: the problem instance.
        solve_slot: callable (slot, x_prev) -> (I, J) allocation, where
            ``x_prev`` is the previous slot's decision (zeros for slot 0).

    Returns:
        The stacked schedule.
    """
    x_prev = np.zeros((instance.num_clouds, instance.num_users))
    slots: list[np.ndarray] = []
    for t in range(instance.num_slots):
        x_t = solve_slot(t, x_prev)
        slots.append(x_t)
        x_prev = x_t
    return AllocationSchedule.from_slots(slots)
