"""Shared interface for every allocation algorithm (paper Section V-B).

The evaluation compares two groups:

* **atomistic** — per-slot optimizers of part of the static cost
  (perf-opt, oper-opt, stat-opt);
* **holistic** — offline-opt (full horizon, impractical baseline) and
  online-greedy (per-slot P0 objective), plus the paper's online-approx
  (:class:`repro.core.regularization.OnlineRegularizedAllocator`).

Every algorithm consumes a :class:`ProblemInstance` and produces an
:class:`AllocationSchedule`; all cost accounting happens downstream in
:mod:`repro.core.costs`, so every algorithm is scored by exactly the same
P0 objective. Execution itself is unified on the streaming spine
(:mod:`repro.simulation.spine`): each algorithm exposes a controller form
(``as_controller`` / ``as_instance_controller``) and the batch ``run()``
protocol survives as a thin adapter that drives that controller over the
instance's observation stream.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import SystemDescription, iter_observations
from ..simulation.spine import PerSlotController, simulate


@runtime_checkable
class AllocationAlgorithm(Protocol):
    """Anything that maps a problem instance to a full allocation schedule."""

    name: str

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Produce an allocation for every slot of the instance."""
        ...


def weighted_static_prices(instance: ProblemInstance, slot: int) -> np.ndarray:
    """Static-weight-scaled per-unit prices p_ij for one slot, shape (I, J)."""
    return instance.weights.static * instance.static_prices(slot)


def run_per_slot(
    instance: ProblemInstance,
    solve_slot,
    name: str = "per-slot",
) -> AllocationSchedule:
    """Drive a per-slot decision function over the horizon.

    A compatibility adapter over the streaming spine: the decision function
    is wrapped as a :class:`PerSlotController` and driven by
    :func:`repro.simulation.spine.simulate` — the same loop every
    controller runs on.

    Args:
        instance: the problem instance.
        solve_slot: callable (slot, x_prev) -> (I, J) allocation, where
            ``x_prev`` is the previous slot's decision (zeros for slot 0).
        name: display name for the wrapping controller.

    Returns:
        The stacked schedule.
    """
    system = SystemDescription.from_instance(instance)
    controller = PerSlotController(
        system=system,
        solve=lambda observation, x_prev: solve_slot(observation.slot, x_prev),
        name=name,
    )
    result = simulate(controller, iter_observations(instance), system)
    assert result.schedule is not None
    return result.schedule
