"""Comparison algorithms: the atomistic and holistic groups of Section V-B."""

from .atomistic import OperOpt, PerfOpt, StatOpt, solve_static_slot
from .base import AllocationAlgorithm, run_per_slot, weighted_static_prices
from .greedy import GreedyController, OnlineGreedy
from .lookahead import RecedingHorizon
from .offline import OfflineOptimal
from .periodic import PeriodicRebalance
from .static import StaticAllocation

__all__ = [
    "AllocationAlgorithm",
    "GreedyController",
    "OfflineOptimal",
    "OnlineGreedy",
    "OperOpt",
    "PerfOpt",
    "PeriodicRebalance",
    "RecedingHorizon",
    "StatOpt",
    "StaticAllocation",
    "run_per_slot",
    "solve_static_slot",
    "weighted_static_prices",
]
