"""online-greedy: per-slot minimization of the P0 objective (Section V-B).

    "The online-greedy algorithm directly takes the objective value of P0
    and minimizes P0 in every time slot. Decision making is based on the
    outcome of the previous time slot, but considers no future
    possibilities."

Each slot solves a small LP: static cost of the current slot plus the
dynamic (reconfiguration + migration) cost of transitioning from the
previous decision, with the same auxiliary-variable linearization as the
offline LP. Section II-E shows why this is suboptimal: it can be both too
aggressive (migrating for any instantaneous gain) and too conservative
(never migrating when a one-slot gain looks too small).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import (
    SlotObservation,
    SystemDescription,
    single_slot_instance,
)
from ..simulation.spine import run_on_spine
from ..solvers.linear import LinearProgramBuilder
from .base import weighted_static_prices


@dataclass(frozen=True)
class OnlineGreedy:
    """Greedy one-shot optimization of each slot's immediate total cost."""

    name: str = "online-greedy"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Greedily optimize each slot in sequence (via the streaming spine)."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_controller(self, system: SystemDescription) -> "GreedyController":
        """The causal (streaming) form of this algorithm."""
        return GreedyController(system=system)

    @staticmethod
    def solve_slot(
        instance: ProblemInstance, slot: int, x_prev: np.ndarray
    ) -> np.ndarray:
        """Minimize this slot's static + transition cost from ``x_prev``."""
        num_clouds, num_users = instance.num_clouds, instance.num_users
        w_dyn = instance.weights.dynamic
        x_prev = np.asarray(x_prev, dtype=float)
        prev_totals = x_prev.sum(axis=1)

        builder = LinearProgramBuilder()
        x = builder.add_block("x", num_clouds, num_users)
        u = builder.add_block("u", num_clouds)
        m_in = builder.add_block("m_in", num_clouds, num_users)
        m_out = builder.add_block("m_out", num_clouds, num_users)
        x_idx = x.indices()
        u_idx = u.indices()
        m_in_idx = m_in.indices()
        m_out_idx = m_out.indices()

        builder.set_cost(x_idx, weighted_static_prices(instance, slot))
        builder.set_cost(u_idx, w_dyn * np.asarray(instance.reconfig_prices, dtype=float))
        b_out = np.asarray(instance.migration_prices.out, dtype=float)
        b_in = np.asarray(instance.migration_prices.into, dtype=float)
        builder.set_cost(m_out_idx, w_dyn * np.broadcast_to(b_out[:, None], (num_clouds, num_users)))
        builder.set_cost(m_in_idx, w_dyn * np.broadcast_to(b_in[:, None], (num_clouds, num_users)))

        workloads = np.asarray(instance.workloads, dtype=float)
        capacities = np.asarray(instance.capacities, dtype=float)
        # Demand (per user) and capacity (per cloud).
        builder.add_ge_rows(x_idx.T, 1.0, workloads)
        builder.add_le_rows(x_idx, 1.0, capacities)
        # Reconfiguration: u_i >= sum_j x_ij - sum_j x_prev_ij.
        builder.add_le_rows(
            np.concatenate([x_idx, u_idx[:, None]], axis=1),
            np.concatenate(
                [np.ones((num_clouds, num_users)), -np.ones((num_clouds, 1))], axis=1
            ),
            prev_totals,
        )
        # Migration: m_in >= x - x_prev; m_out >= x_prev - x.
        builder.add_le_rows(
            np.stack([x_idx.ravel(), m_in_idx.ravel()], axis=1),
            np.array([1.0, -1.0]),
            x_prev.ravel(),
        )
        builder.add_le_rows(
            np.stack([x_idx.ravel(), m_out_idx.ravel()], axis=1),
            np.array([-1.0, -1.0]),
            -x_prev.ravel(),
        )
        result = builder.solve()
        return result.x[x_idx].reshape(num_clouds, num_users)


@dataclass
class GreedyController:
    """Streaming form of :class:`OnlineGreedy`.

    Carries x*_{t-1} as internal state; each observation triggers one slot
    LP. Decisions are identical to the batch algorithm by construction —
    the batch ``run()`` *is* this controller driven over the instance's
    observation stream.
    """

    system: SystemDescription
    name: str = "online-greedy (streaming)"

    def __post_init__(self) -> None:
        self._x_prev = self.system.zero_allocation()

    def observe(self, observation: SlotObservation) -> np.ndarray:
        """Solve the greedy slot LP and advance the internal state."""
        instance = single_slot_instance(self.system, observation)
        x_opt = OnlineGreedy.solve_slot(instance, 0, self._x_prev)
        self._x_prev = x_opt
        return x_opt

    def reset(self) -> None:
        """Drop state: the next observation starts a fresh horizon."""
        self._x_prev = self.system.zero_allocation()

    def get_state(self) -> np.ndarray:
        """Snapshot x*_{t-1}."""
        return self._x_prev.copy()

    def set_state(self, state: object) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self._x_prev = np.asarray(state, dtype=float).copy()
