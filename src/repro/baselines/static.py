"""Static allocation: decide once, never adapt.

The paper's introduction quantifies the win of online adaptation against
"the static approaches which are typically employed in edge clouds" (up to
4x total-cost reduction). This baseline makes that comparison concrete: it
solves the first slot's static-cost LP and keeps that allocation for the
whole horizon. It pays the slot-1 provisioning (reconfiguration +
migration-in) once, never migrates again, and eats whatever service-quality
and operation cost the fixed placement accumulates as users move and prices
drift.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import (
    SlotObservation,
    SystemDescription,
    single_slot_instance,
)
from ..simulation.spine import RecomputeController, run_on_spine
from .atomistic import solve_static_slot
from .base import weighted_static_prices


@dataclass(frozen=True)
class StaticAllocation:
    """Solve slot 0's static cost, hold the allocation for every slot."""

    name: str = "static"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Optimize slot 0, then repeat that allocation for the horizon."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_controller(self, system: SystemDescription) -> RecomputeController:
        """The causal (streaming) form: decide on the first observation, hold."""

        def solve(observation: SlotObservation) -> np.ndarray:
            instance = single_slot_instance(system, observation)
            return solve_static_slot(instance, weighted_static_prices(instance, 0))

        return RecomputeController(
            system=system, solve=solve, period=None, name="static (streaming)"
        )
