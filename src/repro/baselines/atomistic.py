"""The atomistic baselines (paper Section V-B).

    "Atomistic algorithms only consider the static part in the total cost":

* **perf-opt** minimizes only the service quality cost Cost_sq per slot;
* **oper-opt** minimizes only the operation cost Cost_op per slot;
* **stat-opt** minimizes the total static cost Cost_op + Cost_sq per slot
  and ignores the dynamic (reconfiguration + migration) costs.

Each slot is an independent transportation-style LP; the dynamic costs
these baselines ignore still show up in their P0 score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import (
    SlotObservation,
    SystemDescription,
    single_slot_instance,
)
from ..simulation.spine import PerSlotController, run_on_spine
from ..solvers.linear import LinearProgramBuilder


def solve_static_slot(
    instance: ProblemInstance, prices: np.ndarray
) -> np.ndarray:
    """Minimize ``sum_ij prices_ij x_ij`` under demand and capacity constraints."""
    num_clouds, num_users = instance.num_clouds, instance.num_users
    builder = LinearProgramBuilder()
    x = builder.add_block("x", num_clouds, num_users)
    x_idx = x.indices()
    builder.set_cost(x_idx, np.asarray(prices, dtype=float))
    workloads = np.asarray(instance.workloads, dtype=float)
    capacities = np.asarray(instance.capacities, dtype=float)
    for j in range(num_users):
        builder.add_ge(x_idx[:, j], 1.0, float(workloads[j]))
    for i in range(num_clouds):
        builder.add_le(x_idx[i, :], 1.0, float(capacities[i]))
    result = builder.solve()
    return result.x[x_idx].reshape(num_clouds, num_users)


@dataclass(frozen=True)
class _StaticPriceBaseline:
    """Per-slot LP over a price matrix derived from the instance."""

    name: str
    price_fn: Callable[[ProblemInstance, int], np.ndarray]

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Solve every slot's static LP in sequence (via the streaming spine)."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_controller(self, system: SystemDescription) -> PerSlotController:
        """The causal (streaming) form: one static LP per observation."""

        def solve(observation: SlotObservation, _x_prev: np.ndarray) -> np.ndarray:
            instance = single_slot_instance(system, observation)
            return solve_static_slot(instance, self.price_fn(instance, 0))

        return PerSlotController(
            system=system, solve=solve, name=f"{self.name} (streaming)"
        )


def _perf_prices(instance: ProblemInstance, slot: int) -> np.ndarray:
    """Service-quality prices only: d(l_{j,t}, i) / lambda_j."""
    delay = np.asarray(instance.inter_cloud_delay, dtype=float)
    attachment = np.asarray(instance.attachment)[slot]
    workloads = np.asarray(instance.workloads, dtype=float)
    return delay[:, attachment] / workloads[None, :]


def _oper_prices(instance: ProblemInstance, slot: int) -> np.ndarray:
    """Operation prices only: a_{i,t}, identical across users."""
    prices = np.asarray(instance.op_prices, dtype=float)[slot]
    return np.broadcast_to(prices[:, None], (instance.num_clouds, instance.num_users)).copy()


def _stat_prices(instance: ProblemInstance, slot: int) -> np.ndarray:
    """Full static prices: a_{i,t} + d(l_{j,t}, i) / lambda_j."""
    return instance.static_prices(slot)


def PerfOpt() -> _StaticPriceBaseline:
    """perf-opt: minimize only Cost_sq in every slot."""
    return _StaticPriceBaseline(name="perf-opt", price_fn=_perf_prices)


def OperOpt() -> _StaticPriceBaseline:
    """oper-opt: minimize only Cost_op in every slot."""
    return _StaticPriceBaseline(name="oper-opt", price_fn=_oper_prices)


def StatOpt() -> _StaticPriceBaseline:
    """stat-opt: minimize Cost_op + Cost_sq in every slot."""
    return _StaticPriceBaseline(name="stat-opt", price_fn=_stat_prices)
