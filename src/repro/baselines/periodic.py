"""Periodic rebalancing: the operationally-simple middle ground.

Real deployments often avoid per-slot optimization and instead re-run a
static optimizer every k slots ("nightly rebalance"). This baseline makes
that policy concrete: every ``period`` slots it recomputes the static-cost
optimum for the current prices/attachments, and holds the allocation in
between. ``period = 1`` degenerates to stat-opt; ``period >= T`` to the
decide-once static baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from .atomistic import solve_static_slot
from .base import weighted_static_prices


@dataclass(frozen=True)
class PeriodicRebalance:
    """Re-run the static optimizer every ``period`` slots, hold in between."""

    period: int = 5

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be at least 1")

    @property
    def name(self) -> str:
        return f"periodic-{self.period}"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Rebalance on schedule boundaries, hold the allocation in between."""
        slots: list[np.ndarray] = []
        current: np.ndarray | None = None
        for t in range(instance.num_slots):
            if current is None or t % self.period == 0:
                current = solve_static_slot(
                    instance, weighted_static_prices(instance, t)
                )
            slots.append(current.copy())
        return AllocationSchedule.from_slots(slots)
