"""Periodic rebalancing: the operationally-simple middle ground.

Real deployments often avoid per-slot optimization and instead re-run a
static optimizer every k slots ("nightly rebalance"). This baseline makes
that policy concrete: every ``period`` slots it recomputes the static-cost
optimum for the current prices/attachments, and holds the allocation in
between. ``period = 1`` degenerates to stat-opt; ``period >= T`` to the
decide-once static baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import (
    SlotObservation,
    SystemDescription,
    single_slot_instance,
)
from ..simulation.spine import RecomputeController, run_on_spine
from .atomistic import solve_static_slot
from .base import weighted_static_prices


@dataclass(frozen=True)
class PeriodicRebalance:
    """Re-run the static optimizer every ``period`` slots, hold in between."""

    period: int = 5

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError("period must be at least 1")

    @property
    def name(self) -> str:
        """Display name including the rebalance period."""
        return f"periodic-{self.period}"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Rebalance on schedule boundaries, hold the allocation in between."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_controller(self, system: SystemDescription) -> RecomputeController:
        """The causal (streaming) form: recompute every ``period`` observations."""

        def solve(observation: SlotObservation) -> np.ndarray:
            instance = single_slot_instance(system, observation)
            return solve_static_slot(instance, weighted_static_prices(instance, 0))

        return RecomputeController(
            system=system,
            solve=solve,
            period=self.period,
            name=f"{self.name} (streaming)",
        )
