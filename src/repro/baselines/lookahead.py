"""Receding-horizon (lookahead) allocation.

Related work the paper contrasts with (e.g. dynamic service placement with
*predicted future costs*) assumes a prediction window. This baseline makes
that assumption explicit: at each slot it sees the next ``window`` slots of
prices and attachments *exactly* (a perfect predictor), solves the
multi-slot linearized P0 over the window starting from the current
allocation, commits only the first slot, and rolls forward.

It interpolates between the paper's comparison points:

* ``window = 1``  — identical decisions to online-greedy;
* ``window = T``  — identical decisions to offline-opt.

The lookahead ablation (``benchmarks/bench_lookahead.py``) measures how
much *perfect* prediction buys over the prediction-free online-approx,
which needs none.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.observations import SystemDescription
from ..simulation.spine import PerSlotController, run_on_spine
from ..solvers.linear import LinearProgramBuilder
from .base import weighted_static_prices


@dataclass(frozen=True)
class RecedingHorizon:
    """Solve a ``window``-slot LP each slot, commit the first decision."""

    window: int = 3

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ValueError("window must be at least 1")

    @property
    def name(self) -> str:
        """Display name including the lookahead window."""
        return f"lookahead-{self.window}"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Roll the horizon across every slot of the instance."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_instance_controller(self, instance: ProblemInstance) -> PerSlotController:
        """The *privileged* controller form: needs the next ``window`` slots.

        A perfect predictor is not causal, so this baseline has no
        ``as_controller`` — it keeps the full instance and peeks at the
        window starting at each observed slot, exactly as the batch loop
        did.
        """
        return PerSlotController(
            system=SystemDescription.from_instance(instance),
            solve=lambda observation, x_prev: self.solve_window(
                instance, observation.slot, x_prev
            )[0],
            name=f"{self.name} (streaming)",
        )

    def solve_window(
        self, instance: ProblemInstance, start: int, x_prev: np.ndarray
    ) -> np.ndarray:
        """Optimal allocations for slots [start, start+window) given x_prev.

        Returns the (W, I, J) window plan; callers commit plan[0].
        """
        stop = min(start + self.window, instance.num_slots)
        horizon = stop - start
        num_clouds, num_users = instance.num_clouds, instance.num_users
        w_dyn = instance.weights.dynamic
        x_prev = np.asarray(x_prev, dtype=float)

        builder = LinearProgramBuilder()
        x = builder.add_block("x", horizon, num_clouds, num_users)
        u = builder.add_block("u", horizon, num_clouds)
        m_in = builder.add_block("m_in", horizon, num_clouds, num_users)
        m_out = builder.add_block("m_out", horizon, num_clouds, num_users)
        x_idx, u_idx = x.indices(), u.indices()
        m_in_idx, m_out_idx = m_in.indices(), m_out.indices()

        reconfig = np.asarray(instance.reconfig_prices, dtype=float)
        b_out = np.asarray(instance.migration_prices.out, dtype=float)
        b_in = np.asarray(instance.migration_prices.into, dtype=float)
        workloads = np.asarray(instance.workloads, dtype=float)
        capacities = np.asarray(instance.capacities, dtype=float)
        prev_totals = x_prev.sum(axis=1)

        n = num_clouds * num_users
        zeros_n = np.zeros(n)
        ones_block = np.ones((num_clouds, num_users))
        for w in range(horizon):
            slot = start + w
            builder.set_cost(x_idx[w], weighted_static_prices(instance, slot))
            builder.set_cost(u_idx[w], w_dyn * reconfig)
            builder.set_cost(
                m_out_idx[w],
                w_dyn * np.broadcast_to(b_out[:, None], (num_clouds, num_users)),
            )
            builder.set_cost(
                m_in_idx[w],
                w_dyn * np.broadcast_to(b_in[:, None], (num_clouds, num_users)),
            )
            builder.add_ge_rows(x_idx[w].T, 1.0, workloads)
            builder.add_le_rows(x_idx[w], 1.0, capacities)
            if w == 0:
                builder.add_le_rows(
                    np.concatenate([x_idx[w], u_idx[w][:, None]], axis=1),
                    np.concatenate([ones_block, -np.ones((num_clouds, 1))], axis=1),
                    prev_totals,
                )
                builder.add_le_rows(
                    np.stack([x_idx[w].ravel(), m_in_idx[w].ravel()], axis=1),
                    np.array([1.0, -1.0]),
                    x_prev.ravel(),
                )
                builder.add_le_rows(
                    np.stack([x_idx[w].ravel(), m_out_idx[w].ravel()], axis=1),
                    np.array([-1.0, -1.0]),
                    -x_prev.ravel(),
                )
            else:
                builder.add_le_rows(
                    np.concatenate(
                        [x_idx[w], x_idx[w - 1], u_idx[w][:, None]], axis=1
                    ),
                    np.concatenate(
                        [ones_block, -ones_block, -np.ones((num_clouds, 1))], axis=1
                    ),
                    np.zeros(num_clouds),
                )
                builder.add_le_rows(
                    np.stack(
                        [x_idx[w].ravel(), x_idx[w - 1].ravel(), m_in_idx[w].ravel()],
                        axis=1,
                    ),
                    np.array([1.0, -1.0, -1.0]),
                    zeros_n,
                )
                builder.add_le_rows(
                    np.stack(
                        [x_idx[w - 1].ravel(), x_idx[w].ravel(), m_out_idx[w].ravel()],
                        axis=1,
                    ),
                    np.array([1.0, -1.0, -1.0]),
                    zeros_n,
                )
        result = builder.solve()
        return result.x[x_idx].reshape(horizon, num_clouds, num_users)
