"""offline-opt: the full-horizon optimum of P0 (paper Section V-B).

    "The offline-opt algorithm minimizes P0 assuming a global view over all
    the time slots in advance. This is considered impractical and only
    serves as a baseline."

P0 is linear once the (.)+ terms are rewritten with auxiliary variables:
``u_{i,t}`` for the per-cloud workload increase (reconfiguration) and
``m^in/m^out_{i,j,t}`` for per-user migration volumes. Because all prices
are nonnegative, the auxiliaries equal the positive parts at any optimum,
so the LP optimum equals the P0 optimum. Every algorithm in the paper is
normalized by this value (the "empirical competitive ratio").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..simulation.spine import ScheduleController, run_on_spine
from ..solvers.linear import LinearProgramBuilder
from .base import weighted_static_prices


@dataclass(frozen=True)
class OfflineOptimal:
    """Solve P0 exactly over the whole horizon with one big LP."""

    name: str = "offline-opt"

    def run(self, instance: ProblemInstance) -> AllocationSchedule:
        """Solve the full-horizon LP and replay it through the spine."""
        result = run_on_spine(self, instance)
        assert result.schedule is not None
        return result.schedule

    def as_instance_controller(self, instance: ProblemInstance) -> ScheduleController:
        """The *privileged* controller form: plan offline, replay per slot.

        offline-opt is by definition non-causal, so it has no
        ``as_controller``; the full-horizon LP is solved once and its plan
        emitted slot by slot (which unifies execution and accounting, not
        causality).
        """
        builder = self.build_lp(instance)
        result = builder.solve()
        x_block = builder.block("x")
        x = result.x[x_block.indices()].reshape(x_block.shape)
        return ScheduleController(plan=x, name=f"{self.name} (streaming)")

    def optimal_cost(self, instance: ProblemInstance) -> float:
        """The P0 optimum including the constant access-delay term."""
        result = self.build_lp(instance).solve()
        return float(result.objective) + (
            instance.weights.static * instance.access_delay_constant()
        )

    @staticmethod
    def build_lp(instance: ProblemInstance) -> LinearProgramBuilder:
        """Assemble the linearized P0 over all slots.

        The objective excludes the allocation-independent access-delay
        constant (add it back via ``access_delay_constant`` when reporting
        absolute costs).
        """
        num_slots = instance.num_slots
        num_clouds = instance.num_clouds
        num_users = instance.num_users
        w_dyn = instance.weights.dynamic

        builder = LinearProgramBuilder()
        x = builder.add_block("x", num_slots, num_clouds, num_users)
        u = builder.add_block("u", num_slots, num_clouds)
        m_in = builder.add_block("m_in", num_slots, num_clouds, num_users)
        m_out = builder.add_block("m_out", num_slots, num_clouds, num_users)
        x_idx = x.indices()
        u_idx = u.indices()
        m_in_idx = m_in.indices()
        m_out_idx = m_out.indices()

        reconfig = np.asarray(instance.reconfig_prices, dtype=float)
        b_out = np.asarray(instance.migration_prices.out, dtype=float)
        b_in = np.asarray(instance.migration_prices.into, dtype=float)
        workloads = np.asarray(instance.workloads, dtype=float)
        capacities = np.asarray(instance.capacities, dtype=float)

        n = num_clouds * num_users
        zeros_i = np.zeros(num_clouds)
        zeros_n = np.zeros(n)
        for t in range(num_slots):
            prices = weighted_static_prices(instance, t)  # (I, J)
            builder.set_cost(x_idx[t], prices)
            builder.set_cost(u_idx[t], w_dyn * reconfig)
            builder.set_cost(m_out_idx[t], w_dyn * np.broadcast_to(b_out[:, None], (num_clouds, num_users)))
            builder.set_cost(m_in_idx[t], w_dyn * np.broadcast_to(b_in[:, None], (num_clouds, num_users)))

            # Demand: sum_i x_{i,j,t} >= lambda_j (one row per user).
            builder.add_ge_rows(x_idx[t].T, 1.0, workloads)
            # Capacity: sum_j x_{i,j,t} <= C_i (one row per cloud).
            builder.add_le_rows(x_idx[t], 1.0, capacities)
            # Reconfiguration: u_{i,t} >= sum_j x_{i,j,t} - sum_j x_{i,j,t-1}.
            if t == 0:
                columns = np.concatenate([x_idx[t], u_idx[t][:, None]], axis=1)
                coefficients = np.concatenate(
                    [np.ones((num_clouds, num_users)), -np.ones((num_clouds, 1))],
                    axis=1,
                )
            else:
                columns = np.concatenate(
                    [x_idx[t], x_idx[t - 1], u_idx[t][:, None]], axis=1
                )
                coefficients = np.concatenate(
                    [
                        np.ones((num_clouds, num_users)),
                        -np.ones((num_clouds, num_users)),
                        -np.ones((num_clouds, 1)),
                    ],
                    axis=1,
                )
            builder.add_le_rows(columns, coefficients, zeros_i)
            # Migration: m_in >= x_t - x_{t-1}; m_out >= x_{t-1} - x_t.
            if t == 0:
                columns = np.stack([x_idx[t].ravel(), m_in_idx[t].ravel()], axis=1)
                builder.add_le_rows(columns, np.array([1.0, -1.0]), zeros_n)
                # m_out >= -x_t is vacuous (m_out >= 0 suffices).
            else:
                columns = np.stack(
                    [x_idx[t].ravel(), x_idx[t - 1].ravel(), m_in_idx[t].ravel()],
                    axis=1,
                )
                builder.add_le_rows(columns, np.array([1.0, -1.0, -1.0]), zeros_n)
                columns = np.stack(
                    [x_idx[t - 1].ravel(), x_idx[t].ravel(), m_out_idx[t].ravel()],
                    axis=1,
                )
                builder.add_le_rows(columns, np.array([1.0, -1.0, -1.0]), zeros_n)
        return builder
