"""Batched interior-point solves: many P2 instances, one vectorized barrier.

A sweep spends nearly all of its time inside per-slot P2 solves that are
individually tiny — at fig2 scale each Newton step is a handful of
microsecond-sized NumPy calls, so the Python dispatch overhead around the
arithmetic dominates the arithmetic itself. This module stacks B same-shape
instances into contiguous ``(B, I, J)`` arrays and runs **one** lockstep
barrier iteration over all of them: every NumPy call now advances B solves,
and the Woodbury systems become a single batched ``np.linalg.solve`` over a
``(B, I+J, I+J)`` stack.

The hard invariant is **bit-identity**: for every instance, the batched path
performs exactly the floating-point operation sequence of
:class:`repro.solvers.interior_point.InteriorPointBackend` — same reduction
orders, same line-search probes, same convergence tests — so the results are
identical floats, not merely close ones (pinned by
``tests/solvers/test_batched.py``). The reductions this relies on:

* last-axis sums (``(B,I,J).sum(axis=2)`` vs ``(I,J).sum(axis=1)``) use
  NumPy's pairwise summation per contiguous row — identical per lane;
* non-last-axis sums (``sum(axis=1)`` vs 2-D ``sum(axis=0)``) accumulate
  sequentially in index order — identical per lane;
* full-array sums (``(I,J).sum()``) equal per-lane last-axis sums over the
  raveled lane (``reshape(B, -1).sum(axis=1)``);
* masked minima are order-insensitive, so ``where(...)+min`` replaces
  boolean-mask gathering exactly;
* the batched ``np.linalg.solve`` runs the same LAPACK ``gesv`` per stacked
  matrix as the 2-D call.

Instances converge at different speeds; per-instance **convergence masks**
drop finished lanes from the stack (compaction by fancy indexing), so late
stragglers do not pay for the whole batch. Mixed shapes are handled by
grouping: one lockstep solve per distinct ``(I, J)``.

An optional numba JIT of the SMW assembly kernel sits behind the
``REPRO_BATCHED_JIT=1`` environment flag. Only assignment/elementwise code
is jitted (reductions stay in NumPy to preserve the summation orders
above), and the flag degrades cleanly to the pure-NumPy kernel when numba
is not importable — there is no hard dependency.

See docs/PERFORMANCE.md for the stacking layout and the measured wins.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..telemetry import TraceContext, current_trace, get_registry
from .base import ConvexProgram, SolverError, SolverResult
from .interior_point import (
    _ARMIJO_C,
    _BACKTRACK,
    _BOUNDARY_FRACTION,
    _MU_DECAY,
    _WARM_MU_DISCOUNT,
)

#: Environment flag enabling the numba JIT of the SMW assembly kernel.
JIT_ENV_FLAG = "REPRO_BATCHED_JIT"

#: Backend name reported on batched results. It matches the sequential
#: backend's name on purpose: the solves are bit-identical, so downstream
#: consumers (results, certificates) must not be able to tell them apart;
#: the ``solver.batched.*`` counters record which path actually ran.
BATCHED_BACKEND_NAME = "structured-ipm"


def jit_requested() -> bool:
    """Whether the numba kernel was requested via the environment flag."""
    return os.environ.get(JIT_ENV_FLAG, "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
    )


def _numpy_fill_smw(
    matrix: np.ndarray,
    row_diag: np.ndarray,
    col_diag: np.ndarray,
    dinv: np.ndarray,
) -> None:
    """Fill the stacked Woodbury core matrices in place (pure NumPy)."""
    batch, num_clouds, num_users = dinv.shape
    clouds = np.arange(num_clouds)
    users = np.arange(num_clouds, num_clouds + num_users)
    matrix[:, clouds, clouds] = row_diag
    matrix[:, users, users] = col_diag
    matrix[:, :num_clouds, num_clouds:] = dinv
    matrix[:, num_clouds:, :num_clouds] = dinv.transpose(0, 2, 1)


def _numpy_expand_dx(
    dinv: np.ndarray, grad: np.ndarray, z: np.ndarray, num_clouds: int
) -> np.ndarray:
    """dx = -(dinv * (grad - Uz)) with Uz broadcast from the stacked z."""
    uz = z[:, :num_clouds, None] + z[:, None, num_clouds:]
    return -(dinv * (grad - uz))


def _build_numba_kernels() -> tuple[Callable, Callable] | None:
    """Compile the numba variants, or ``None`` when numba is unavailable.

    Only assignments and independent elementwise arithmetic are jitted —
    each output element is produced by the same operation sequence as the
    NumPy kernel, so bit-identity is preserved by construction. Reductions
    (row/column sums, rhs assembly) deliberately stay in NumPy.
    """
    try:
        from numba import njit
    except Exception:  # pragma: no cover - numba absent in the base image
        return None

    @njit(cache=True)
    def fill_smw(matrix, row_diag, col_diag, dinv):  # pragma: no cover
        batch, num_clouds, num_users = dinv.shape
        for b in range(batch):
            for i in range(num_clouds):
                matrix[b, i, i] = row_diag[b, i]
                for j in range(num_users):
                    matrix[b, i, num_clouds + j] = dinv[b, i, j]
                    matrix[b, num_clouds + j, i] = dinv[b, i, j]
            for j in range(num_users):
                matrix[b, num_clouds + j, num_clouds + j] = col_diag[b, j]

    @njit(cache=True)
    def expand_dx(dinv, grad, z, num_clouds):  # pragma: no cover
        batch, _, num_users = dinv.shape
        dx = np.empty_like(dinv)
        for b in range(batch):
            for i in range(num_clouds):
                for j in range(num_users):
                    uz = z[b, i] + z[b, num_clouds + j]
                    dx[b, i, j] = -(dinv[b, i, j] * (grad[b, i, j] - uz))
        return dx

    return fill_smw, expand_dx


_KERNELS: tuple[Callable, Callable] | None = None
_KERNELS_RESOLVED = False


def resolve_kernels() -> tuple[Callable, Callable, bool]:
    """(fill_smw, expand_dx, jitted) honoring the feature flag.

    The numba import and compilation happen at most once per process; a
    requested-but-unavailable JIT silently falls back to the NumPy kernels
    (the flag is an optimization hint, never a requirement).
    """
    global _KERNELS, _KERNELS_RESOLVED
    if jit_requested():
        if not _KERNELS_RESOLVED:
            _KERNELS = _build_numba_kernels()
            _KERNELS_RESOLVED = True
        if _KERNELS is not None:
            return _KERNELS[0], _KERNELS[1], True
    return _numpy_fill_smw, _numpy_expand_dx, False


# ----- the lockstep group solve ----------------------------------------------


class _Lane:
    """Per-instance bookkeeping that lives outside the stacked arrays."""

    __slots__ = (
        "index",
        "program",
        "sub",
        "tol",
        "registry",
        "warm",
        "budget",
        "trace",
        "trace_ctx",
        "outcome",
        "final",
    )

    def __init__(self, index, program, sub, tol, registry, trace_ctx=None):
        self.index = index
        self.program = program
        self.sub = sub
        self.tol = tol
        self.registry = registry
        self.warm = False
        self.budget = program.budget
        self.trace: list[dict] | None = [] if registry.enabled else None
        # The distributed-trace context of the *submitting* cell (captured
        # at submit time), not of whichever thread runs the flush — so the
        # lane's deferred telemetry stays attributed to its originator.
        self.trace_ctx: TraceContext | None = trace_ctx
        self.outcome: SolverResult | Exception | None = None
        # Telemetry for the finished solve, emitted by solve_batch() in
        # *input* order once every group is done — lanes retire in
        # convergence order, and emitting at retirement would permute the
        # event stream relative to the sequential path.
        self.final: dict | None = None

    def emit_telemetry(self) -> None:
        if self.final is None:
            return
        final = self.final
        telemetry = self.registry
        telemetry.counter("solver.ipm.solves").inc()
        telemetry.counter("solver.iterations").inc(final["iterations"])
        telemetry.histogram("solver.ipm.iterations").observe(
            final["iterations"]
        )
        if self.warm:
            telemetry.counter("solver.ipm.warm_start_hits").inc()
        if final["partial"]:
            telemetry.counter("solver.ipm.budget_exhausted").inc()
        if self.trace is not None:
            linkage = {}
            if self.trace_ctx is not None:
                linkage = {
                    "trace_id": self.trace_ctx.trace_id,
                    "parent_span_id": self.trace_ctx.span_id,
                }
            telemetry.event(
                "solver.ipm.trace",
                backend=final["backend"],
                iterations=final["iterations"],
                warm=self.warm,
                mu_final=final["mu"],
                gap_target=final["gap_target"],
                trace=self.trace,
                **linkage,
            )


class _GroupSolve:
    """One lockstep barrier solve over same-shape instances.

    The stacked state mirrors :class:`interior_point._BarrierSolve` lane by
    lane; ``active`` holds the indices (into the group) of lanes still
    iterating, and every stacked array is compacted to the active set, so
    finished instances stop costing anything.
    """

    def __init__(
        self,
        lanes: list[_Lane],
        *,
        max_newton_per_mu: int,
        max_outer: int,
        name: str = BATCHED_BACKEND_NAME,
    ):
        self.lanes = lanes
        self.max_newton_per_mu = max_newton_per_mu
        self.max_outer = max_outer
        self.name = name
        sub = lanes[0].sub
        self.num_clouds = sub.num_clouds
        self.num_users = sub.num_users
        self.n = self.num_clouds * self.num_users
        self.num_constraints = self.n + self.num_users + self.num_clouds
        self._budget_start = time.perf_counter()
        self._fill_smw, self._expand_dx, self.jitted = resolve_kernels()

    # -- stacked constants (built once per group) -----------------------------

    def _stack_constants(self, lanes: list[_Lane]) -> None:
        subs = [lane.sub for lane in lanes]
        self.prices = np.stack(
            [np.asarray(s.static_prices, dtype=float) for s in subs]
        )
        # creg/bmig replicate the objective's own per-call expressions; they
        # are pure functions of the (immutable) subproblem data, so hoisting
        # them out of the loop changes nothing.
        self.creg = np.stack(
            [np.asarray(s.reconfig_prices, dtype=float) / s.eta for s in subs]
        )
        self.bmig = np.stack(
            [
                np.asarray(s.migration_prices, dtype=float)[:, None]
                / s.tau[None, :]
                for s in subs
            ]
        )
        self.eps1 = np.array([float(s.eps1) for s in subs])
        self.eps2 = np.stack(
            [
                np.broadcast_to(
                    np.asarray(s.eps2, dtype=float), (self.num_users,)
                ).astype(float)
                for s in subs
            ]
        )[:, None, :]
        self.x_prev = np.stack([np.asarray(s.x_prev, dtype=float) for s in subs])
        self.prev_totals = self.x_prev.sum(axis=2)
        self.prev_shifted = self.prev_totals + self.eps1[:, None]
        self.prev_mig = self.x_prev + self.eps2
        self.workloads = np.stack(
            [np.asarray(s.workloads, dtype=float) for s in subs]
        )
        self.capacities = np.stack(
            [np.asarray(s.capacities, dtype=float) for s in subs]
        )

    def _take(self, keep: np.ndarray) -> None:
        """Compact every stacked array to the kept lane positions."""
        for attr in (
            "prices",
            "creg",
            "bmig",
            "eps1",
            "eps2",
            "x_prev",
            "prev_totals",
            "prev_shifted",
            "prev_mig",
            "workloads",
            "capacities",
            "x",
            "mu",
            "gap_target",
            "iterations",
            "newton_count",
            "outer_count",
            "last_decrement",
            "partial",
        ):
            setattr(self, attr, getattr(self, attr)[keep])

    # -- stacked replicas of the sequential arithmetic ------------------------

    def _slacks(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        demand = x.sum(axis=1) - self.workloads
        capacity = self.capacities - x.sum(axis=2)
        return demand, capacity

    def _objective(self, x: np.ndarray) -> np.ndarray:
        """Stacked P2 objective, one value per lane (matches serial bitwise)."""
        batch = x.shape[0]
        total = (self.prices * x).reshape(batch, -1).sum(axis=1)
        cloud_totals = x.sum(axis=2)
        shifted = np.maximum(cloud_totals + self.eps1[:, None], 1e-12)
        total = total + (
            self.creg
            * (shifted * np.log(shifted / self.prev_shifted) - cloud_totals)
        ).sum(axis=1)
        xs = np.maximum(x + self.eps2, 1e-12)
        total = total + (
            self.bmig * (xs * np.log(xs / self.prev_mig) - x)
        ).reshape(batch, -1).sum(axis=1)
        return total

    def _barrier_value(self, x: np.ndarray, mu: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        demand, capacity = self._slacks(x)
        feasible = (
            (x.reshape(batch, -1).min(axis=1) > 0)
            & (demand.min(axis=1) > 0)
            & (capacity.min(axis=1) > 0)
        )
        with np.errstate(all="ignore"):
            value = self._objective(x)
            barrier = (
                np.log(x).reshape(batch, -1).sum(axis=1)
                + np.log(demand).sum(axis=1)
                + np.log(capacity).sum(axis=1)
            )
            value = value - mu * barrier
        return np.where(feasible, value, np.inf)

    def _barrier_gradient(self, x: np.ndarray, mu: np.ndarray) -> np.ndarray:
        demand, capacity = self._slacks(x)
        cloud_totals = x.sum(axis=2)
        shifted = np.maximum(cloud_totals + self.eps1[:, None], 1e-12)
        grad = self.prices + (
            self.creg * np.log(shifted / self.prev_shifted)
        )[:, :, None]
        grad = grad + self.bmig * np.log(
            np.maximum(x + self.eps2, 1e-12) / self.prev_mig
        )
        mu3 = mu[:, None, None]
        grad = grad - mu3 / x
        grad = grad - (mu[:, None] / demand)[:, None, :]
        grad = grad + (mu[:, None] / capacity)[:, :, None]
        return grad

    def _hessian_factors(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        diag = self.bmig / np.maximum(x + self.eps2, 1e-12)
        cloud_totals = x.sum(axis=2)
        cloud_scale = self.creg / np.maximum(
            cloud_totals + self.eps1[:, None], 1e-12
        )
        return diag, cloud_scale

    def _newton_direction(
        self, x: np.ndarray, grad: np.ndarray, mu: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(dx, singular_mask): stacked SMW solve, lanes flagged on failure."""
        batch = x.shape[0]
        demand, capacity = self._slacks(x)
        f_diag, cloud_scale = self._hessian_factors(x)
        mu3 = mu[:, None, None]
        d = f_diag + mu3 / x**2
        dinv = 1.0 / d
        cloud_w = cloud_scale + mu[:, None] / capacity**2
        demand_w = mu[:, None] / demand**2
        row_sum = dinv.sum(axis=2)
        col_sum = dinv.sum(axis=1)
        size = self.num_clouds + self.num_users
        matrix = np.zeros((batch, size, size))
        self._fill_smw(
            matrix, row_sum + 1.0 / cloud_w, col_sum + 1.0 / demand_w, dinv
        )
        dg = dinv * grad
        rhs = np.concatenate([dg.sum(axis=2), dg.sum(axis=1)], axis=1)
        singular = np.zeros(batch, dtype=bool)
        try:
            # The explicit trailing axis keeps NumPy >= 2 in "stack of
            # column vectors" mode; nrhs=1 gesv on each lane is the same
            # LAPACK call as the sequential 1-D solve, bit for bit.
            z = np.linalg.solve(matrix, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            # One singular lane poisons the whole gufunc call; redo the
            # stack lane by lane (same LAPACK routine on the same memory,
            # so surviving lanes get identical floats) and flag the bad
            # ones — they fail exactly as the sequential solver would.
            z = np.zeros_like(rhs)
            for k in range(batch):
                try:
                    z[k] = np.linalg.solve(matrix[k], rhs[k])
                except np.linalg.LinAlgError:
                    singular[k] = True
        dx = self._expand_dx(dinv, grad, z, self.num_clouds)
        return dx, singular

    def _max_step(self, x: np.ndarray, dx: np.ndarray) -> np.ndarray:
        batch = x.shape[0]
        alpha = np.full(batch, 1.0 / _BOUNDARY_FRACTION)
        with np.errstate(all="ignore"):
            neg = dx < 0
            ratios = np.where(neg, x / np.where(neg, -dx, 1.0), np.inf)
            alpha = np.minimum(alpha, ratios.reshape(batch, -1).min(axis=1))
            demand, capacity = self._slacks(x)
            d_demand = dx.sum(axis=1)
            neg = d_demand < 0
            ratios = np.where(neg, demand / np.where(neg, -d_demand, 1.0), np.inf)
            alpha = np.minimum(alpha, ratios.min(axis=1))
            d_capacity = -dx.sum(axis=2)
            neg = d_capacity < 0
            ratios = np.where(
                neg, capacity / np.where(neg, -d_capacity, 1.0), np.inf
            )
            alpha = np.minimum(alpha, ratios.min(axis=1))
        return _BOUNDARY_FRACTION * alpha

    # -- setup ----------------------------------------------------------------

    def _setup(self) -> None:
        """Per-lane start points and barrier schedules (mirrors serial run())."""
        ready: list[_Lane] = []
        starts: list[np.ndarray] = []
        mus: list[float] = []
        gaps: list[float] = []
        shape = (self.num_clouds, self.num_users)
        for lane in self.lanes:
            try:
                program, sub = lane.program, lane.sub
                warm_requested = (
                    bool(program.warm_start) and program.x0 is not None
                )
                warm = bool(program.warm_start)
                x = None
                if program.x0 is not None:
                    x = np.asarray(program.x0, dtype=float).reshape(shape)
                    if not self._strictly_feasible_one(sub, x):
                        x = None
                else:
                    warm = False
                if x is None:
                    warm = False
                    x = sub.interior_point().reshape(shape)
                    if not self._strictly_feasible_one(sub, x):
                        raise SolverError(
                            f"{self.name}: no strictly feasible start"
                        )
                scale = max(1.0, abs(program.objective(x.ravel())))
                gap_target = max(lane.tol, 1e-10) * scale
                mu = max(
                    scale / self.num_constraints,
                    10.0 * gap_target / self.num_constraints,
                )
                if warm:
                    mu = max(
                        mu * _WARM_MU_DISCOUNT,
                        10.0 * gap_target / self.num_constraints,
                    )
                if warm_requested and not warm:
                    lane.registry.counter("solver.ipm.barrier_restarts").inc()
                lane.warm = warm
            except Exception as exc:  # noqa: BLE001 - delivered per lane
                lane.outcome = exc
                continue
            ready.append(lane)
            starts.append(x)
            mus.append(mu)
            gaps.append(gap_target)
        self.lanes = ready
        if not ready:
            return
        self._stack_constants(ready)
        batch = len(ready)
        self.x = np.stack(starts)
        self.mu = np.array(mus)
        self.gap_target = np.array(gaps)
        self.iterations = np.zeros(batch, dtype=np.int64)
        self.newton_count = np.zeros(batch, dtype=np.int64)
        self.outer_count = np.zeros(batch, dtype=np.int64)
        self.last_decrement = np.zeros(batch)
        self.partial = np.zeros(batch, dtype=bool)

    @staticmethod
    def _strictly_feasible_one(sub, x: np.ndarray) -> bool:
        demand = x.sum(axis=0) - np.asarray(sub.workloads, dtype=float)
        capacity = np.asarray(sub.capacities, dtype=float) - x.sum(axis=1)
        return x.min() > 0 and demand.min() > 0 and capacity.min() > 0

    # -- lane retirement ------------------------------------------------------

    def _record_trace(self, positions: np.ndarray) -> None:
        """Append one outer-iteration trace entry per finishing-mu lane."""
        for pos in positions:
            lane = self.lanes[pos]
            if lane.trace is not None:
                lane.trace.append(
                    {
                        "mu": float(self.mu[pos]),
                        "iterations": int(self.iterations[pos]),
                        "decrement": float(self.last_decrement[pos]),
                    }
                )

    def _finish_lane(self, pos: int) -> None:
        """Build the lane's SolverResult exactly as the sequential run() does."""
        lane = self.lanes[pos]
        x = self.x[pos].copy()
        mu = float(self.mu[pos])
        iterations = int(self.iterations[pos])
        partial = bool(self.partial[pos])
        lane.final = {
            "backend": self.name,
            "iterations": iterations,
            "mu": mu,
            "gap_target": float(self.gap_target[pos]),
            "partial": partial,
        }
        demand = x.sum(axis=0) - self.workloads[pos]
        capacity = self.capacities[pos] - x.sum(axis=1)
        duals = {
            "demand": mu / demand,
            "capacity": mu / capacity,
            "nonnegativity": (mu / x).ravel(),
            "mu": mu,
        }
        flat = x.ravel()
        lane.outcome = SolverResult(
            x=flat,
            objective=float(lane.program.objective(flat)),
            iterations=iterations,
            backend=self.name,
            duals=duals,
            partial=partial,
        )

    def _fail_lane(self, pos: int, error: Exception) -> None:
        self.lanes[pos].outcome = error

    def _retire(self, finished: np.ndarray, failed: dict[int, Exception]) -> None:
        """Finish/fail the flagged lanes, then compact the stacked state."""
        batch = len(self.lanes)
        drop = np.zeros(batch, dtype=bool)
        for pos in np.nonzero(finished)[0]:
            self._finish_lane(int(pos))
            drop[pos] = True
        for pos, error in failed.items():
            self._fail_lane(pos, error)
            drop[pos] = True
        if not drop.any():
            return
        keep = ~drop
        self.lanes = [lane for pos, lane in enumerate(self.lanes) if keep[pos]]
        if self.lanes:
            self._take(keep)

    # -- the lockstep loop ----------------------------------------------------

    def run(self) -> None:
        """Drive every lane to completion (outcomes land on the lanes)."""
        self._setup()
        while self.lanes:
            self._macro_step()

    def _budget_fired(self) -> np.ndarray:
        """Per-lane budget check (top of every Newton iteration, like serial).

        Wall-clock budgets share the batch's clock — a deadline measures
        real time, and lanes progress together in real time — while
        iteration budgets count each lane's own Newton steps exactly.
        """
        batch = len(self.lanes)
        fired = np.zeros(batch, dtype=bool)
        elapsed = None
        for pos, lane in enumerate(self.lanes):
            if lane.budget is None:
                continue
            if elapsed is None:
                elapsed = time.perf_counter() - self._budget_start
            fired[pos] = lane.budget.exhausted(
                elapsed_s=elapsed, iterations=int(self.iterations[pos])
            )
        return fired

    def _macro_step(self) -> None:
        """One Newton attempt for every active lane, then lane transitions."""
        batch = len(self.lanes)
        # after_newton: lanes whose inner Newton loop ends this step.
        after_newton = self._budget_fired()
        self.partial = self.partial | after_newton
        failed: dict[int, Exception] = {}
        stepping = ~after_newton
        if stepping.any():
            grad = self._barrier_gradient(self.x, self.mu)
            dx, singular = self._newton_direction(self.x, grad, self.mu)
            for pos in np.nonzero(singular & stepping)[0]:
                failed[int(pos)] = SolverError(
                    f"{self.name}: Woodbury system singular"
                )
                stepping[pos] = False
                after_newton[pos] = False
            directional = (grad * dx).reshape(batch, -1).sum(axis=1)
            decrement = -directional
            self.last_decrement = np.where(
                stepping, decrement, self.last_decrement
            )
            converged = stepping & (
                (decrement <= 0)
                | (decrement * 0.5 <= 1e-10 * np.maximum(1.0, self.mu))
            )
            after_newton |= converged
            stepping &= ~converged
        if stepping.any():
            alpha = np.minimum(1.0, self._max_step(self.x, dx))
            value = self._barrier_value(self.x, self.mu)
            accepted = np.zeros(batch, dtype=bool)
            candidate = self.x
            # The sequential `while alpha > 1e-14` guard runs before the
            # first probe too: a lane whose capped step is already tiny
            # exits the Newton loop without evaluating any candidate.
            dry = stepping & (alpha <= 1e-14)
            after_newton |= dry
            pending = stepping & ~dry
            while pending.any():
                candidate = np.where(
                    pending[:, None, None], self.x + alpha[:, None, None] * dx,
                    candidate,
                )
                new_value = self._barrier_value(candidate, self.mu)
                ok = pending & (
                    new_value <= value + (_ARMIJO_C * alpha) * directional
                )
                accepted |= ok
                pending &= ~ok
                alpha = np.where(pending, alpha * _BACKTRACK, alpha)
                exhausted = pending & (alpha <= 1e-14)
                # Line search ran dry: the sequential code breaks the Newton
                # loop without moving x.
                after_newton |= exhausted
                pending &= ~exhausted
            if accepted.any():
                self.x = np.where(accepted[:, None, None], candidate, self.x)
                self.iterations = self.iterations + accepted
                self.newton_count = self.newton_count + accepted
                hit_cap = accepted & (self.newton_count >= self.max_newton_per_mu)
                after_newton |= hit_cap
        # Outer-loop transitions for every lane whose Newton loop ended.
        if after_newton.any():
            positions = np.nonzero(after_newton)[0]
            self._record_trace(positions)
            finished = after_newton & (
                self.partial
                | (self.mu * self.num_constraints <= self.gap_target)
            )
            continuing = after_newton & ~finished
            self.outer_count = self.outer_count + after_newton
            ran_out = continuing & (self.outer_count >= self.max_outer)
            for pos in np.nonzero(ran_out)[0]:
                failed[int(pos)] = SolverError(
                    f"{self.name}: barrier loop did not converge"
                )
            continuing &= ~ran_out
            self.mu = np.where(continuing, self.mu * _MU_DECAY, self.mu)
            self.newton_count = np.where(continuing, 0, self.newton_count)
        else:
            finished = np.zeros(batch, dtype=bool)
        if finished.any() or failed:
            self._retire(finished, failed)


# ----- public API ------------------------------------------------------------


def solve_batch(
    programs: Sequence[ConvexProgram],
    *,
    tol: float | Sequence[float] = 1e-8,
    registries: Sequence | None = None,
    traces: "Sequence[TraceContext | None] | None" = None,
    max_newton_per_mu: int = 80,
    max_outer: int = 60,
) -> list[SolverResult | Exception]:
    """Solve many P2 programs with the lockstep batched barrier method.

    Programs are grouped by ``(I, J)`` shape; each group runs as one
    stacked solve with per-instance convergence masks. Every instance's
    result — including failures — is **bit-identical** to what
    :class:`InteriorPointBackend` would produce sequentially.

    Args:
        programs: programs carrying ``RegularizedSubproblem`` structure.
        tol: one tolerance for all, or one per program.
        registries: optional per-program telemetry registries (the batched
            sweep runner passes each requesting cell's registry so solver
            counters aggregate exactly as on the sequential path); defaults
            to the active registry.
        traces: optional per-program distributed-trace contexts (the
            coordinator passes each submitter's context so deferred
            telemetry stays attributed); defaults to the caller's current
            context for every program.

    Returns:
        One entry per program, in order: a :class:`SolverResult`, or the
        exception the sequential solve of that program would have raised
        (callers re-raise or fall back per instance — never batch-wide).
    """
    programs = list(programs)
    if np.ndim(tol) == 0:
        tols = [float(tol)] * len(programs)
    else:
        tols = [float(t) for t in tol]
        if len(tols) != len(programs):
            raise ValueError("tol must be scalar or one per program")
    if registries is None:
        registries = [get_registry()] * len(programs)
    elif len(registries) != len(programs):
        raise ValueError("registries must be one per program")
    if traces is None:
        traces = [current_trace()] * len(programs)
    elif len(traces) != len(programs):
        raise ValueError("traces must be one per program")

    batch_registry = get_registry()
    lanes: list[_Lane] = []
    groups: dict[tuple[int, int], list[_Lane]] = {}
    for index, program in enumerate(programs):
        sub = program.structure
        lane_registry = registries[index]
        if sub is None or not hasattr(sub, "hessian_factors"):
            lane = _Lane(
                index, program, None, tols[index], lane_registry,
                traces[index],
            )
            lane.outcome = SolverError(
                f"{BATCHED_BACKEND_NAME} requires a program with "
                "RegularizedSubproblem structure"
            )
            lanes.append(lane)
            continue
        lane = _Lane(
            index, program, sub, tols[index], lane_registry, traces[index]
        )
        lanes.append(lane)
        groups.setdefault((sub.num_clouds, sub.num_users), []).append(lane)

    batch_registry.counter("solver.batched.calls").inc()
    batch_registry.counter("solver.batched.instances").inc(len(programs))
    batch_registry.counter("solver.batched.groups").inc(len(groups))
    for shape, group in groups.items():
        batch_registry.histogram("solver.batched.batch_size").observe(
            len(group)
        )
        solver = _GroupSolve(
            group,
            max_newton_per_mu=max_newton_per_mu,
            max_outer=max_outer,
        )
        solver.run()
        if solver.jitted:
            batch_registry.counter("solver.batched.jit_groups").inc()

    outcomes: list[SolverResult | Exception] = []
    for lane in lanes:
        assert lane.outcome is not None, "lane left without an outcome"
        lane.emit_telemetry()
        outcomes.append(lane.outcome)
    return outcomes


# ----- deferred solves: the lockstep rendezvous for concurrent cells ---------


@dataclass
class _PendingSolve:
    """One enqueued program waiting for the next batched flush."""

    program: ConvexProgram
    tol: float
    registry: object
    trace: TraceContext | None = None
    event: threading.Event = field(default_factory=threading.Event)
    outcome: SolverResult | Exception | None = None


class BatchCoordinator:
    """Collects concurrent P2 solves and flushes them as one batch.

    ``total`` participants (threads) register up front. A participant that
    needs a solve calls :meth:`submit` and blocks; a participant that is
    done calls :meth:`finish`. Whenever every live participant is either
    blocked in :meth:`submit` or finished, the last arriver flushes the
    pending set through :func:`solve_batch` and wakes everyone with their
    outcome. This is the rendezvous that lets otherwise-unchanged
    sequential cell code (threads running the normal simulation spine) be
    batched at its natural synchronization points — with no deadlock: every
    participant eventually blocks or finishes, and each flush unblocks all
    waiters.
    """

    def __init__(self, total: int):
        if total < 1:
            raise ValueError("total participants must be at least 1")
        self._total = total
        self._finished = 0
        self._pending: list[_PendingSolve] = []
        self._lock = threading.Lock()

    def submit(self, program: ConvexProgram, *, tol: float) -> SolverResult:
        """Enqueue a solve, flush if this completes the rendezvous, block."""
        entry = _PendingSolve(program, tol, get_registry(), current_trace())
        with self._lock:
            self._pending.append(entry)
            flush = self._flush_ready()
        if flush is not None:
            self._flush(flush)
        entry.event.wait()
        if isinstance(entry.outcome, Exception):
            raise entry.outcome
        assert entry.outcome is not None
        return entry.outcome

    def finish(self) -> None:
        """Mark one participant done (call exactly once per participant)."""
        with self._lock:
            self._finished += 1
            flush = self._flush_ready()
        if flush is not None:
            self._flush(flush)

    def _flush_ready(self) -> list[_PendingSolve] | None:
        """Under the lock: claim the pending set if the rendezvous is full."""
        if self._pending and len(self._pending) + self._finished >= self._total:
            batch, self._pending = self._pending, []
            return batch
        return None

    def _flush(self, batch: list[_PendingSolve]) -> None:
        outcomes = solve_batch(
            [entry.program for entry in batch],
            tol=[entry.tol for entry in batch],
            registries=[entry.registry for entry in batch],
            traces=[entry.trace for entry in batch],
        )
        for entry, outcome in zip(batch, outcomes):
            entry.outcome = outcome
            entry.event.set()


@dataclass(frozen=True)
class DeferringBackend:
    """A :class:`ConvexBackend` that routes solves through a coordinator.

    Swapped in as the *primary* of a per-cell ``FallbackBackend`` by the
    batched sweep runner: the cell's code path (warm starts, repair,
    certificates, circuit breaker, SciPy fallback) is untouched — only the
    structured-IPM solve itself is deferred into the shared batch. A
    deferred solve that fails raises here, in the requesting thread, so the
    fallback semantics are exactly the sequential ones.
    """

    coordinator: BatchCoordinator
    name: str = BATCHED_BACKEND_NAME

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Block until the next batched flush delivers this solve's outcome."""
        return self.coordinator.submit(program, tol=tol)
