"""Solver interfaces shared by the LP and convex backends.

The paper modeled its programs in Pyomo and solved them with IPOPT/GLPK.
Neither is available offline, so this package provides the equivalent
substrate: a sparse LP layer on top of SciPy's HiGHS, and two interchangeable
convex backends (SciPy ``trust-constr`` and a custom structured interior
point method) for the regularized subproblem P2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np
from scipy import sparse


class SolverError(RuntimeError):
    """Raised when a backend cannot produce a solution of acceptable quality."""


@dataclass(frozen=True)
class SolveBudget:
    """A best-effort cap on how much work one solve may do.

    Budgets exist for the live service (docs/SERVING.md): a slot must be
    decided before its deadline, so a solve that would converge late is
    cut off and its current *strictly interior* barrier iterate returned
    as a partial result instead. Both limits are optional and compose
    (whichever fires first wins); a ``None`` budget — the default
    everywhere — changes nothing, which is what keeps batch
    ``simulate()`` bit-identical with budgets disabled.

    Attributes:
        deadline_s: wall-clock seconds from the start of the solve. The
            check runs between Newton iterations, so overshoot is bounded
            by one iteration, not one solve.
        max_iterations: cap on total Newton iterations across the whole
            barrier schedule.
    """

    deadline_s: float | None = None
    max_iterations: int | None = None

    def exhausted(self, *, elapsed_s: float, iterations: int) -> bool:
        """True once either limit has been reached."""
        if self.deadline_s is not None and elapsed_s >= self.deadline_s:
            return True
        if self.max_iterations is not None and iterations >= self.max_iterations:
            return True
        return False


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solve.

    Attributes:
        x: the (flattened) primal solution.
        objective: objective value at ``x``.
        iterations: iterations the backend reports (0 when unavailable).
        backend: name of the backend that produced the result.
        duals: optional mapping of constraint-family name -> multipliers.
        primary_error: when a fallback wrapper produced this result, the
            error message of the primary backend that failed first (kept
            inspectable instead of silently discarded); ``None`` otherwise.
        partial: ``True`` when a :class:`SolveBudget` fired and ``x`` is
            the last (feasible) iterate rather than a converged optimum.
    """

    x: np.ndarray
    objective: float
    iterations: int = 0
    backend: str = ""
    duals: dict[str, np.ndarray] = field(default_factory=dict)
    primary_error: str | None = None
    partial: bool = False


@dataclass
class ConvexProgram:
    """min f(x) s.t. A x >= lower, x >= x_lower (all constraints linear).

    ``hessian`` may return any scipy-sparse matrix or dense array; backends
    that cannot use second-order information ignore it.

    Attributes:
        objective: f(x) -> float, convex and differentiable on the feasible set.
        gradient: grad f(x) -> (n,).
        hessian: optional hess f(x) -> (n, n) sparse/dense.
        constraint_matrix: (M, n) sparse matrix A.
        constraint_lower: (M,) lower bounds for A x.
        x_lower: (n,) variable lower bounds (typically zeros).
        x0: optional starting point. ``None`` lets the backend derive one
            (see :func:`starting_point`); a warm start is passed here and
            need not be strictly feasible — backends must recover, not
            crash, when it is not.
        warm_start: hint that ``x0`` is believed close to the optimum
            (e.g. the previous slot's solution); backends may exploit it
            (the structured IPM starts its barrier schedule lower) but the
            returned optimum must be the same either way.
    """

    objective: Callable[[np.ndarray], float]
    gradient: Callable[[np.ndarray], np.ndarray]
    constraint_matrix: sparse.spmatrix
    constraint_lower: np.ndarray
    x_lower: np.ndarray
    x0: np.ndarray | None = None
    hessian: Callable[[np.ndarray], object] | None = None
    #: Optional problem-specific structure (e.g. the P2 subproblem) that
    #: specialized backends can exploit; generic backends ignore it.
    structure: object | None = None
    warm_start: bool = False
    #: Optional work cap (see :class:`SolveBudget`). Backends that honor
    #: it return ``SolverResult(partial=True)`` when it fires; backends
    #: that cannot interrupt themselves (the generic SciPy fallback)
    #: ignore it, so the budget is best-effort by contract.
    budget: SolveBudget | None = None

    @property
    def num_variables(self) -> int:
        if self.x0 is not None:
            return int(np.asarray(self.x0).size)
        return int(np.asarray(self.x_lower).size)

    @property
    def num_constraints(self) -> int:
        return int(np.asarray(self.constraint_lower).size)

    def constraint_slack(self, x: np.ndarray) -> np.ndarray:
        """A x - lower (negative entries = violated constraints)."""
        return np.asarray(self.constraint_matrix @ x) - np.asarray(self.constraint_lower)

    def max_violation(self, x: np.ndarray) -> float:
        """Worst violation across linear constraints and variable bounds."""
        slack = self.constraint_slack(x)
        bound = np.asarray(self.x_lower) - np.asarray(x)
        worst = 0.0
        if slack.size:
            worst = max(worst, float(-slack.min()))
        if bound.size:
            worst = max(worst, float(bound.max()))
        return max(worst, 0.0)


def starting_point(program: ConvexProgram) -> np.ndarray:
    """A usable starting point for a program whose ``x0`` may be ``None``.

    Preference order: the program's own ``x0``; the structure's canonical
    strictly interior point (P2 programs); the variable lower bounds (a
    feasible-for-bounds default that generic methods can work from).
    """
    if program.x0 is not None:
        return np.asarray(program.x0, dtype=float)
    structure = program.structure
    if structure is not None and hasattr(structure, "interior_point"):
        return np.asarray(structure.interior_point(), dtype=float)
    return np.asarray(program.x_lower, dtype=float).copy()


class ConvexBackend(Protocol):
    """A solver capable of minimizing a :class:`ConvexProgram`."""

    name: str

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Minimize the program to tolerance ``tol``; raise SolverError on failure."""
        ...
