"""Solver interfaces shared by the LP and convex backends.

The paper modeled its programs in Pyomo and solved them with IPOPT/GLPK.
Neither is available offline, so this package provides the equivalent
substrate: a sparse LP layer on top of SciPy's HiGHS, and two interchangeable
convex backends (SciPy ``trust-constr`` and a custom structured interior
point method) for the regularized subproblem P2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol

import numpy as np
from scipy import sparse


class SolverError(RuntimeError):
    """Raised when a backend cannot produce a solution of acceptable quality."""


@dataclass(frozen=True)
class SolverResult:
    """Outcome of one solve.

    Attributes:
        x: the (flattened) primal solution.
        objective: objective value at ``x``.
        iterations: iterations the backend reports (0 when unavailable).
        backend: name of the backend that produced the result.
        duals: optional mapping of constraint-family name -> multipliers.
        primary_error: when a fallback wrapper produced this result, the
            error message of the primary backend that failed first (kept
            inspectable instead of silently discarded); ``None`` otherwise.
    """

    x: np.ndarray
    objective: float
    iterations: int = 0
    backend: str = ""
    duals: dict[str, np.ndarray] = field(default_factory=dict)
    primary_error: str | None = None


@dataclass
class ConvexProgram:
    """min f(x) s.t. A x >= lower, x >= x_lower (all constraints linear).

    ``hessian`` may return any scipy-sparse matrix or dense array; backends
    that cannot use second-order information ignore it.

    Attributes:
        objective: f(x) -> float, convex and differentiable on the feasible set.
        gradient: grad f(x) -> (n,).
        hessian: optional hess f(x) -> (n, n) sparse/dense.
        constraint_matrix: (M, n) sparse matrix A.
        constraint_lower: (M,) lower bounds for A x.
        x_lower: (n,) variable lower bounds (typically zeros).
        x0: optional starting point. ``None`` lets the backend derive one
            (see :func:`starting_point`); a warm start is passed here and
            need not be strictly feasible — backends must recover, not
            crash, when it is not.
        warm_start: hint that ``x0`` is believed close to the optimum
            (e.g. the previous slot's solution); backends may exploit it
            (the structured IPM starts its barrier schedule lower) but the
            returned optimum must be the same either way.
    """

    objective: Callable[[np.ndarray], float]
    gradient: Callable[[np.ndarray], np.ndarray]
    constraint_matrix: sparse.spmatrix
    constraint_lower: np.ndarray
    x_lower: np.ndarray
    x0: np.ndarray | None = None
    hessian: Callable[[np.ndarray], object] | None = None
    #: Optional problem-specific structure (e.g. the P2 subproblem) that
    #: specialized backends can exploit; generic backends ignore it.
    structure: object | None = None
    warm_start: bool = False

    @property
    def num_variables(self) -> int:
        if self.x0 is not None:
            return int(np.asarray(self.x0).size)
        return int(np.asarray(self.x_lower).size)

    @property
    def num_constraints(self) -> int:
        return int(np.asarray(self.constraint_lower).size)

    def constraint_slack(self, x: np.ndarray) -> np.ndarray:
        """A x - lower (negative entries = violated constraints)."""
        return np.asarray(self.constraint_matrix @ x) - np.asarray(self.constraint_lower)

    def max_violation(self, x: np.ndarray) -> float:
        """Worst violation across linear constraints and variable bounds."""
        slack = self.constraint_slack(x)
        bound = np.asarray(self.x_lower) - np.asarray(x)
        worst = 0.0
        if slack.size:
            worst = max(worst, float(-slack.min()))
        if bound.size:
            worst = max(worst, float(bound.max()))
        return max(worst, 0.0)


def starting_point(program: ConvexProgram) -> np.ndarray:
    """A usable starting point for a program whose ``x0`` may be ``None``.

    Preference order: the program's own ``x0``; the structure's canonical
    strictly interior point (P2 programs); the variable lower bounds (a
    feasible-for-bounds default that generic methods can work from).
    """
    if program.x0 is not None:
        return np.asarray(program.x0, dtype=float)
    structure = program.structure
    if structure is not None and hasattr(structure, "interior_point"):
        return np.asarray(structure.interior_point(), dtype=float)
    return np.asarray(program.x_lower, dtype=float).copy()


class ConvexBackend(Protocol):
    """A solver capable of minimizing a :class:`ConvexProgram`."""

    name: str

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Minimize the program to tolerance ``tol``; raise SolverError on failure."""
        ...
