"""Convex backend built on ``scipy.optimize.minimize(method="trust-constr")``.

This replaces the paper's IPOPT: ``trust-constr`` is an interior-point /
trust-region method that accepts the analytic gradients, sparse Hessians,
and sparse linear constraints the regularized subproblem P2 provides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, minimize

from ..telemetry import get_registry
from .base import ConvexProgram, SolverError, SolverResult, starting_point


@dataclass(frozen=True)
class ScipyTrustConstrBackend:
    """trust-constr with analytic derivatives.

    Attributes:
        max_iterations: iteration cap passed to the optimizer.
        feasibility_tol: maximum allowed constraint violation of the result.
    """

    max_iterations: int = 2000
    feasibility_tol: float = 1e-6
    name: str = "scipy-trust-constr"

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Minimize with trust-constr; validates and clips the solution."""
        constraints = []
        if program.num_constraints:
            constraints.append(
                LinearConstraint(
                    program.constraint_matrix,
                    lb=np.asarray(program.constraint_lower, dtype=float),
                    ub=np.inf,
                )
            )
        bounds = Bounds(
            lb=np.asarray(program.x_lower, dtype=float),
            ub=np.full(program.num_variables, np.inf),
        )
        kwargs: dict[str, object] = {}
        if program.hessian is not None:
            kwargs["hess"] = program.hessian
        # trust-constr tolerates infeasible starts (it restores feasibility
        # itself), so a warm start needs no projection here.
        result = minimize(
            program.objective,
            starting_point(program),
            jac=program.gradient,
            bounds=bounds,
            constraints=constraints,
            method="trust-constr",
            options={
                "gtol": tol,
                "xtol": tol,
                "maxiter": self.max_iterations,
                "verbose": 0,
            },
            **kwargs,
        )
        x = np.asarray(result.x, dtype=float)
        violation = program.max_violation(x)
        if violation > self.feasibility_tol:
            raise SolverError(
                f"{self.name}: solution violates constraints by {violation:.3e} "
                f"(status={result.status}, message={result.message!r})"
            )
        # Clip the tiny residual violations so downstream feasibility checks
        # (and the entropy terms' logs) see a clean point.
        x = np.maximum(x, np.asarray(program.x_lower, dtype=float))
        duals: dict[str, np.ndarray] = {}
        v = getattr(result, "v", None)
        if v:
            packed = np.asarray(v[0], dtype=float)
            duals["linear"] = packed
            structure = program.structure
            num_users = getattr(structure, "num_users", None)
            num_clouds = getattr(structure, "num_clouds", None)
            if (
                num_users is not None
                and num_clouds is not None
                and packed.size == num_users + num_clouds
            ):
                # P2 stacks [J demand rows; I capacity rows] (see
                # RegularizedSubproblem.constraint_matrices); the capacity
                # family was written as -X >= -C, so its multipliers come
                # back negated. Exposing the split by name lets the
                # diagnostics/pricing layers treat both backends uniformly.
                duals["demand"] = np.abs(packed[:num_users])
                duals["capacity"] = np.abs(packed[num_users:])
        iterations = int(getattr(result, "nit", 0) or 0)
        telemetry = get_registry()
        telemetry.counter("solver.scipy.solves").inc()
        telemetry.counter("solver.iterations").inc(iterations)
        telemetry.histogram("solver.scipy.iterations").observe(iterations)
        return SolverResult(
            x=x,
            objective=float(program.objective(x)),
            iterations=iterations,
            backend=self.name,
            duals=duals,
        )
