"""A structured log-barrier interior-point solver for the P2 subproblem.

The paper solved P2 with IPOPT. This backend is a from-scratch replacement
specialized to P2's structure, which makes every Newton step cheap:

* the objective Hessian is ``diag(d) + sum_i sigma_i 1_i 1_i^T`` where
  ``1_i`` is the indicator of cloud *i*'s variables (the entropy term on the
  per-cloud total is a rank-one block of ones);
* every constraint row is a +/-1 indicator: demand rows select one user's
  variables across clouds, capacity rows select one cloud's variables;
  their barrier Hessians are therefore rank-one dyads over the same
  indicator families.

The full barrier Hessian is diagonal plus ``I + J`` dyads (capacity dyads
merge with the objective's cloud dyads), so Newton directions come from a
Sherman-Morrison-Woodbury solve with a dense system of size (I + J) instead
of factoring an (I*J) x (I*J) matrix. All dyad inner products reduce to row
sums, column sums, and single entries of an (I, J) table.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..telemetry import current_trace, get_registry, phase
from .base import ConvexProgram, SolverError, SolverResult

#: Fraction-to-boundary rule: never step further than this share of the
#: distance to the nearest constraint boundary.
_BOUNDARY_FRACTION = 0.99
#: Multiplicative decrease of the barrier parameter between outer iterations.
_MU_DECAY = 0.2
#: Barrier parameter discount applied to warm starts: with x0 near the new
#: optimum the early high-mu centering passes are wasted work, so start the
#: schedule ~4 outer iterations further down (0.2**4 = 1.6e-3). Newton with
#: the Armijo line search is globally convergent on the barrier objective,
#: so a poor warm start costs extra Newton steps, never correctness.
_WARM_MU_DISCOUNT = 1.6e-3
#: Armijo sufficient-decrease constant and backtracking factor.
_ARMIJO_C = 1e-4
_BACKTRACK = 0.5


@dataclass(frozen=True)
class InteriorPointBackend:
    """Structured barrier method for programs built by ``RegularizedSubproblem``.

    Requires ``program.structure`` to be a
    :class:`repro.core.subproblem.RegularizedSubproblem`; raises
    :class:`SolverError` otherwise (the registry then falls back to the
    generic SciPy backend).
    """

    max_newton_per_mu: int = 80
    max_outer: int = 60
    name: str = "structured-ipm"

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Run the barrier method to duality gap ~ tol * max(1, |f|)."""
        structure = program.structure
        if structure is None or not hasattr(structure, "hessian_factors"):
            raise SolverError(
                f"{self.name} requires a program with RegularizedSubproblem structure"
            )
        solver = _BarrierSolve(program, structure, tol, self)
        return solver.run()


class _BarrierSolve:
    """One barrier solve: state and the Newton machinery."""

    def __init__(self, program, subproblem, tol: float, config: InteriorPointBackend):
        self.program = program
        self.sub = subproblem
        self.tol = tol
        self.config = config
        self.num_clouds = subproblem.num_clouds
        self.num_users = subproblem.num_users
        self.n = self.num_clouds * self.num_users
        self.workloads = np.asarray(subproblem.workloads, dtype=float)
        self.capacities = np.asarray(subproblem.capacities, dtype=float)
        self.num_constraints = self.n + self.num_users + self.num_clouds
        self.iterations = 0
        self.last_decrement = 0.0
        # Deadline budgets (docs/SERVING.md): checked between Newton
        # iterations; a fired budget turns the solve into a partial
        # result instead of an error. ``budget is None`` skips every
        # check, keeping unbudgeted solves bit-identical.
        self.budget = program.budget
        self.partial = False
        self._budget_start = time.perf_counter() if self.budget is not None else 0.0

    def _out_of_budget(self) -> bool:
        if self.budget is None:
            return False
        return self.budget.exhausted(
            elapsed_s=time.perf_counter() - self._budget_start,
            iterations=self.iterations,
        )

    # ----- constraint slacks (all computed from the (I, J) table) ------------

    def slacks(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(demand slack (J,), capacity slack (I,)) at x shaped (I, J)."""
        demand = x.sum(axis=0) - self.workloads
        capacity = self.capacities - x.sum(axis=1)
        return demand, capacity

    def strictly_feasible(self, x: np.ndarray) -> bool:
        demand, capacity = self.slacks(x)
        return x.min() > 0 and demand.min() > 0 and capacity.min() > 0

    def barrier_value(self, x: np.ndarray, mu: float) -> float:
        demand, capacity = self.slacks(x)
        if x.min() <= 0 or demand.min() <= 0 or capacity.min() <= 0:
            return np.inf
        value = self.program.objective(x.ravel())
        value -= mu * float(
            np.log(x).sum() + np.log(demand).sum() + np.log(capacity).sum()
        )
        return value

    def barrier_gradient(self, x: np.ndarray, mu: float) -> np.ndarray:
        """Gradient of the barrier objective, shaped (I, J)."""
        demand, capacity = self.slacks(x)
        grad = self.program.gradient(x.ravel()).reshape(x.shape)
        grad = grad - mu / x
        grad = grad - (mu / demand)[None, :]
        grad = grad + (mu / capacity)[:, None]
        return grad

    # ----- Newton direction via Woodbury --------------------------------------

    def newton_direction(self, x: np.ndarray, grad: np.ndarray, mu: float) -> np.ndarray:
        """Solve H dx = -grad with H = diag(d) + U diag(w) U^T.

        U's columns are per-cloud indicators (objective entropy blocks merged
        with capacity barriers) and per-user indicators (demand barriers).
        """
        demand, capacity = self.slacks(x)
        f_diag, cloud_scale = self.sub.hessian_factors(x.ravel())
        d = f_diag.reshape(x.shape) + mu / x**2  # (I, J), strictly positive
        dinv = 1.0 / d

        cloud_w = cloud_scale + mu / capacity**2  # > 0 always
        demand_w = mu / demand**2

        row_sum = dinv.sum(axis=1)  # S_i
        col_sum = dinv.sum(axis=0)  # T_j

        nc, nu = self.num_clouds, self.num_users
        matrix = np.zeros((nc + nu, nc + nu))
        matrix[:nc, :nc] = np.diag(row_sum + 1.0 / cloud_w)
        matrix[nc:, nc:] = np.diag(col_sum + 1.0 / demand_w)
        matrix[:nc, nc:] = dinv
        matrix[nc:, :nc] = dinv.T

        dg = dinv * grad
        rhs = np.concatenate([dg.sum(axis=1), dg.sum(axis=0)])
        try:
            z = np.linalg.solve(matrix, rhs)
        except np.linalg.LinAlgError as exc:
            raise SolverError(f"{self.config.name}: Woodbury system singular") from exc

        uz = z[:nc][:, None] + z[nc:][None, :]
        return -(dinv * (grad - uz))

    # ----- line search ---------------------------------------------------------

    def max_step(self, x: np.ndarray, dx: np.ndarray) -> float:
        """Largest step keeping all slacks strictly positive."""
        alpha = 1.0 / _BOUNDARY_FRACTION
        neg = dx < 0
        if np.any(neg):
            alpha = min(alpha, float((x[neg] / -dx[neg]).min()))
        demand, capacity = self.slacks(x)
        d_demand = dx.sum(axis=0)
        neg = d_demand < 0
        if np.any(neg):
            alpha = min(alpha, float((demand[neg] / -d_demand[neg]).min()))
        d_capacity = -dx.sum(axis=1)
        neg = d_capacity < 0
        if np.any(neg):
            alpha = min(alpha, float((capacity[neg] / -d_capacity[neg]).min()))
        return _BOUNDARY_FRACTION * alpha

    # ----- main loop -----------------------------------------------------------

    def run(self) -> SolverResult:
        telemetry = get_registry()
        warm_requested = bool(self.program.warm_start) and self.program.x0 is not None
        warm = bool(self.program.warm_start)
        if self.program.x0 is None:
            x = None
            warm = False
        else:
            x = np.asarray(self.program.x0, dtype=float).reshape(
                self.num_clouds, self.num_users
            )
            if not self.strictly_feasible(x):
                x = None
        if x is None:
            # Fall back to the canonical strictly interior point (also the
            # recovery path for an infeasible warm start — which then no
            # longer justifies the discounted barrier schedule).
            warm = False
            x = self.sub.interior_point().reshape(self.num_clouds, self.num_users)
            if not self.strictly_feasible(x):
                raise SolverError(f"{self.config.name}: no strictly feasible start")

        scale = max(1.0, abs(self.program.objective(x.ravel())))
        gap_target = max(self.tol, 1e-10) * scale
        mu = max(scale / self.num_constraints, 10.0 * gap_target / self.num_constraints)
        if warm:
            mu = max(mu * _WARM_MU_DISCOUNT, 10.0 * gap_target / self.num_constraints)

        if warm_requested and not warm:
            # The warm start was rejected (not strictly feasible) and the
            # barrier schedule restarted cold from the canonical interior
            # point — worth counting: frequent restarts mean the blending
            # upstream is not doing its job.
            telemetry.counter("solver.ipm.barrier_restarts").inc()

        # Per-outer-iteration residual series (mu, cumulative Newton steps,
        # final Newton decrement) — the solver's convergence fingerprint,
        # persisted to the manifest so behavioural regressions are visible
        # even when wall time is not (docs/DIAGNOSTICS.md). Only built when
        # a real registry is active.
        trace: list[dict] | None = [] if telemetry.enabled else None
        for _ in range(self.config.max_outer):
            x = self._newton_loop(x, mu)
            if trace is not None:
                trace.append(
                    {
                        "mu": mu,
                        "iterations": self.iterations,
                        "decrement": self.last_decrement,
                    }
                )
            if self.partial:
                break
            if mu * self.num_constraints <= gap_target:
                break
            mu *= _MU_DECAY
        else:
            raise SolverError(f"{self.config.name}: barrier loop did not converge")

        telemetry.counter("solver.ipm.solves").inc()
        telemetry.counter("solver.iterations").inc(self.iterations)
        telemetry.histogram("solver.ipm.iterations").observe(self.iterations)
        if warm:
            telemetry.counter("solver.ipm.warm_start_hits").inc()
        if self.partial:
            # Barrier iterates are strictly interior by construction, so
            # a budget-truncated x is always feasible — degraded in cost,
            # never in constraints (Theorem 1 survives the cutoff).
            telemetry.counter("solver.ipm.budget_exhausted").inc()
        if trace is not None:
            # When a distributed-trace context is active, link the event to
            # its originating span — the same linkage the batched lanes
            # emit, so sequential and batched traces attribute identically.
            linkage = {}
            ctx = current_trace()
            if ctx is not None:
                linkage = {
                    "trace_id": ctx.trace_id,
                    "parent_span_id": ctx.span_id,
                }
            telemetry.event(
                "solver.ipm.trace",
                backend=self.config.name,
                iterations=self.iterations,
                warm=warm,
                mu_final=mu,
                gap_target=gap_target,
                trace=trace,
                **linkage,
            )

        demand, capacity = self.slacks(x)
        # The barrier's implicit multipliers: mu over the respective slack.
        # "nonnegativity" pairs with the x >= 0 bounds elementwise, so the
        # diagnostics layer can evaluate KKT residuals and a duality-gap
        # certificate without re-deriving anything.
        duals = {
            "demand": mu / demand,
            "capacity": mu / capacity,
            "nonnegativity": (mu / x).ravel(),
            "mu": mu,
        }
        flat = x.ravel()
        return SolverResult(
            x=flat,
            objective=float(self.program.objective(flat)),
            iterations=self.iterations,
            backend=self.config.name,
            duals=duals,
            partial=self.partial,
        )

    def _newton_loop(self, x: np.ndarray, mu: float) -> np.ndarray:
        """Minimize the barrier objective for a fixed mu.

        The ``phase`` blocks are the profiling plane's phase timers
        (docs/OBSERVABILITY.md §12): free no-op context managers unless a
        profile is active, and purely observational either way — the
        floating-point operation sequence is identical with profiling on
        or off.
        """
        for _ in range(self.config.max_newton_per_mu):
            if self._out_of_budget():
                self.partial = True
                break
            with phase("ipm.assemble"):
                grad = self.barrier_gradient(x, mu)
            with phase("ipm.factorize_smw"):
                dx = self.newton_direction(x, grad, mu)
            with phase("ipm.convergence_check"):
                decrement = float(-(grad * dx).sum())
                self.last_decrement = decrement
            if decrement <= 0:
                break
            if decrement * 0.5 <= 1e-10 * max(1.0, mu):
                break
            with phase("ipm.line_search"):
                alpha = min(1.0, self.max_step(x, dx))
                value = self.barrier_value(x, mu)
                directional = float((grad * dx).sum())
                found = False
                while alpha > 1e-14:
                    candidate = x + alpha * dx
                    new_value = self.barrier_value(candidate, mu)
                    if new_value <= value + _ARMIJO_C * alpha * directional:
                        found = True
                        break
                    alpha *= _BACKTRACK
            if not found:
                break
            x = x + alpha * dx
            self.iterations += 1
        return x
