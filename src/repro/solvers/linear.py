"""Sparse linear-program construction and solution via SciPy HiGHS.

This is the substrate the paper obtained from GLPK: the offline optimum,
the online greedy step, and the atomistic baselines are all linear programs
once the (x)+ terms are linearized with auxiliary variables. The
:class:`LinearProgramBuilder` keeps that linearization code readable: named
variable blocks, constraints assembled in sparse triplet form.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .base import SolverError, SolverResult


@dataclass(frozen=True)
class VariableBlock:
    """A named contiguous block of LP variables with an arbitrary shape."""

    name: str
    offset: int
    shape: tuple[int, ...]

    @property
    def size(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    def indices(self) -> np.ndarray:
        """Flat LP-column indices of the whole block, shaped like the block."""
        return np.arange(self.offset, self.offset + self.size).reshape(self.shape)


class LinearProgramBuilder:
    """Assemble ``min c^T v  s.t.  A_ub v <= b_ub, v >= 0`` incrementally.

    Variables are declared as named blocks; constraints are added as sparse
    rows referencing flat column indices obtained from the blocks. All
    variables are nonnegative (which is what every program in the paper
    needs); upper bounds can be attached per block.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, VariableBlock] = {}
        self._num_vars = 0
        self._cost_entries: list[tuple[np.ndarray, np.ndarray]] = []
        self._rows: list[np.ndarray] = []
        self._cols: list[np.ndarray] = []
        self._vals: list[np.ndarray] = []
        self._rhs: list[float] = []
        self._num_rows = 0
        self._upper: dict[int, float] = {}
        self._free: set[int] = set()

    def add_block(self, name: str, *shape: int) -> VariableBlock:
        """Declare a new nonnegative variable block."""
        if name in self._blocks:
            raise ValueError(f"variable block {name!r} already exists")
        block = VariableBlock(name=name, offset=self._num_vars, shape=tuple(shape))
        self._blocks[name] = block
        self._num_vars += block.size
        return block

    def block(self, name: str) -> VariableBlock:
        """Look up a declared variable block by name."""
        return self._blocks[name]

    def set_cost(self, indices: np.ndarray, coefficients: np.ndarray) -> None:
        """Add objective coefficients for the given flat variable indices.

        ``coefficients`` may be a scalar or any array with the same number
        of elements as ``indices`` (both are flattened in C order).
        """
        indices = np.asarray(indices).ravel()
        coefficients = np.asarray(coefficients, dtype=float).ravel()
        if coefficients.size == 1:
            coefficients = np.full(indices.size, float(coefficients[0]))
        elif coefficients.size != indices.size:
            raise ValueError(
                f"coefficients size {coefficients.size} != indices size {indices.size}"
            )
        self._cost_entries.append((indices, coefficients))

    def set_upper_bound(self, indices: np.ndarray, upper: np.ndarray) -> None:
        """Attach upper bounds to specific variables (default is +inf)."""
        indices = np.asarray(indices).ravel()
        upper = np.asarray(upper, dtype=float).ravel()
        if upper.size == 1:
            upper = np.full(indices.size, float(upper[0]))
        elif upper.size != indices.size:
            raise ValueError(f"upper size {upper.size} != indices size {indices.size}")
        for idx, ub in zip(indices, upper):
            self._upper[int(idx)] = float(ub)

    def set_free(self, indices: np.ndarray) -> None:
        """Lift the default nonnegativity: these variables range over R.

        Needed for relaxation variables like P3's reconfiguration term,
        whose lower bound is a constraint (u >= Delta X) rather than zero.
        """
        for idx in np.asarray(indices).ravel():
            self._free.add(int(idx))

    def add_le(self, indices: np.ndarray, coefficients: np.ndarray, rhs: float) -> None:
        """Add one constraint  sum coefficients * v[indices] <= rhs."""
        indices = np.asarray(indices).ravel()
        coefficients = np.asarray(coefficients, dtype=float).ravel()
        if coefficients.size == 1:
            coefficients = np.full(indices.size, float(coefficients[0]))
        elif coefficients.size != indices.size:
            raise ValueError(
                f"coefficients size {coefficients.size} != indices size {indices.size}"
            )
        self._rows.append(np.full(indices.size, self._num_rows))
        self._cols.append(indices.astype(int))
        self._vals.append(coefficients)
        self._rhs.append(float(rhs))
        self._num_rows += 1

    def add_ge(self, indices: np.ndarray, coefficients: np.ndarray, rhs: float) -> None:
        """Add one constraint  sum coefficients * v[indices] >= rhs."""
        self.add_le(indices, -np.asarray(coefficients, dtype=float), -rhs)

    def add_le_rows(
        self, columns: np.ndarray, coefficients: np.ndarray, rhs: np.ndarray
    ) -> None:
        """Add many constraints at once (vectorized).

        Args:
            columns: (R, K) integer matrix; row r lists the K variable
                indices of constraint r.
            coefficients: (R, K) (or broadcastable) coefficient matrix.
            rhs: (R,) right-hand sides; row r is  sum_k coef * v[col] <= rhs[r].
        """
        columns = np.asarray(columns, dtype=int)
        if columns.ndim != 2:
            raise ValueError("columns must be a (R, K) matrix")
        num_rows, width = columns.shape
        coefficients = np.broadcast_to(
            np.asarray(coefficients, dtype=float), columns.shape
        )
        rhs = np.asarray(rhs, dtype=float).ravel()
        if rhs.size != num_rows:
            raise ValueError(f"rhs size {rhs.size} != number of rows {num_rows}")
        row_ids = np.repeat(np.arange(self._num_rows, self._num_rows + num_rows), width)
        self._rows.append(row_ids)
        self._cols.append(columns.ravel())
        self._vals.append(coefficients.ravel().copy())
        self._rhs.extend(rhs.tolist())
        self._num_rows += num_rows

    def add_ge_rows(
        self, columns: np.ndarray, coefficients: np.ndarray, rhs: np.ndarray
    ) -> None:
        """Vectorized >= counterpart of :meth:`add_le_rows`."""
        coefficients = np.broadcast_to(
            np.asarray(coefficients, dtype=float), np.asarray(columns).shape
        )
        self.add_le_rows(columns, -coefficients, -np.asarray(rhs, dtype=float))

    @property
    def num_variables(self) -> int:
        return self._num_vars

    @property
    def num_constraints(self) -> int:
        return self._num_rows

    def solve(self, *, method: str = "highs") -> SolverResult:
        """Run HiGHS and return the solution; raise SolverError if not optimal."""
        cost = np.zeros(self._num_vars)
        for indices, coefficients in self._cost_entries:
            np.add.at(cost, indices, coefficients)
        if self._num_rows:
            a_ub = sparse.coo_matrix(
                (
                    np.concatenate(self._vals),
                    (np.concatenate(self._rows), np.concatenate(self._cols)),
                ),
                shape=(self._num_rows, self._num_vars),
            ).tocsr()
            b_ub = np.asarray(self._rhs)
        else:
            a_ub = None
            b_ub = None
        bounds = [
            (None if i in self._free else 0.0, self._upper.get(i))
            for i in range(self._num_vars)
        ]
        result = linprog(cost, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method=method)
        if not result.success:
            raise SolverError(f"linprog failed: status={result.status} {result.message}")
        duals = {}
        ineqlin = getattr(result, "ineqlin", None)
        if ineqlin is not None and getattr(ineqlin, "marginals", None) is not None:
            # HiGHS marginals are <= 0 for A_ub v <= b_ub rows, in row order.
            duals["inequality"] = np.asarray(ineqlin.marginals, dtype=float)
        return SolverResult(
            x=np.asarray(result.x),
            objective=float(result.fun),
            iterations=int(getattr(result, "nit", 0) or 0),
            backend=f"linprog-{method}",
            duals=duals,
        )
