"""LP and convex solver substrate (replaces the paper's GLPK/Pyomo/IPOPT)."""

from .base import ConvexBackend, ConvexProgram, SolverError, SolverResult
from .interior_point import InteriorPointBackend
from .linear import LinearProgramBuilder, VariableBlock
from .registry import (
    FallbackBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
)
from .scipy_backend import ScipyTrustConstrBackend

__all__ = [
    "ConvexBackend",
    "ConvexProgram",
    "FallbackBackend",
    "InteriorPointBackend",
    "LinearProgramBuilder",
    "ScipyTrustConstrBackend",
    "SolverError",
    "SolverResult",
    "VariableBlock",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
]
