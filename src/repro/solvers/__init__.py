"""LP and convex solver substrate (replaces the paper's GLPK/Pyomo/IPOPT)."""

from .base import (
    ConvexBackend,
    ConvexProgram,
    SolveBudget,
    SolverError,
    SolverResult,
)
from .interior_point import InteriorPointBackend
from .linear import LinearProgramBuilder, VariableBlock
from .registry import (
    FallbackBackend,
    available_backends,
    default_backend,
    get_backend,
    register_backend,
    reset_session,
)
from .scipy_backend import ScipyTrustConstrBackend

__all__ = [
    "ConvexBackend",
    "ConvexProgram",
    "FallbackBackend",
    "InteriorPointBackend",
    "LinearProgramBuilder",
    "ScipyTrustConstrBackend",
    "SolveBudget",
    "SolverError",
    "SolverResult",
    "VariableBlock",
    "available_backends",
    "default_backend",
    "get_backend",
    "register_backend",
    "reset_session",
]
