"""Backend registry: look up convex backends by name, pick sensible defaults."""

from __future__ import annotations

import dataclasses
import logging

from ..telemetry import get_registry
from .base import ConvexBackend, ConvexProgram, SolverError, SolverResult
from .interior_point import InteriorPointBackend
from .scipy_backend import ScipyTrustConstrBackend

logger = logging.getLogger(__name__)

_BACKENDS: dict[str, ConvexBackend] = {}


def register_backend(name: str, backend: ConvexBackend) -> None:
    """Register (or replace) a backend under ``name``."""
    _BACKENDS[name] = backend


def get_backend(name: str) -> ConvexBackend:
    """Look up a backend by name; raises KeyError with the known names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


class FallbackBackend:
    """Try a fast specialized backend, fall back to a robust one.

    The structured interior-point method requires programs carrying the P2
    structure and can (rarely) hit numerically hard barrier subproblems; the
    SciPy backend is slower but general. This wrapper gives the best of
    both and is the project default.

    A **circuit breaker** guards against a persistently broken primary:
    after ``failure_threshold`` *consecutive* primary failures the wrapper
    stops trying the primary (solving on the secondary directly, without
    paying the doomed attempt) for the next ``cooldown`` solves, then
    half-opens and gives the primary another chance. Any primary success
    closes the circuit and resets the failure count. Circuit transitions
    are logged and counted (``solver.circuit_breaker.*``); every fallback
    still attaches the primary's error to the result.

    Attributes:
        primary: the fast backend tried first.
        secondary: the robust backend used on failure (and while open).
        failure_threshold: consecutive primary failures that open the
            circuit.
        cooldown: solves routed straight to the secondary while open.
    """

    def __init__(
        self,
        primary: ConvexBackend,
        secondary: ConvexBackend,
        *,
        failure_threshold: int = 3,
        cooldown: int = 25,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if cooldown < 1:
            raise ValueError("cooldown must be at least 1")
        self.primary = primary
        self.secondary = secondary
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.name = f"{primary.name}+{secondary.name}"
        self._consecutive_failures = 0
        self._skips_remaining = 0

    @property
    def circuit_open(self) -> bool:
        """Whether the primary is currently being skipped."""
        return self._skips_remaining > 0

    def reset_circuit(self) -> None:
        """Close the circuit and forget past failures (e.g. between runs)."""
        self._consecutive_failures = 0
        self._skips_remaining = 0

    def reset_session(self) -> None:
        """Reset every piece of cross-solve state this wrapper holds.

        Service sessions (docs/SERVING.md) outlive any single ``run()``:
        one long-lived process serves many logical sessions against the
        same registered backend instance, so a circuit opened by one
        session must not leak a cold-start penalty into the next. Today
        the breaker is the only cross-solve state here, but callers
        should use this (not :meth:`reset_circuit`) at session
        boundaries so future caches are covered by the same contract.
        """
        self.reset_circuit()
        for backend in (self.primary, self.secondary):
            reset = getattr(backend, "reset_session", None)
            if reset is not None:
                reset()

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Try the primary backend; on SolverError, retry with the secondary.

        The primary's error is not discarded: it is logged and attached to
        the returned result as ``SolverResult.primary_error`` so callers
        can see *why* the slow path ran. While the circuit is open the
        primary is skipped entirely (``primary_error`` then records the
        skip, not a fresh attempt).
        """
        telemetry = get_registry()
        if self._skips_remaining > 0:
            self._skips_remaining -= 1
            if self._skips_remaining == 0:
                # Half-open: the next solve gives the primary a new chance
                # with a clean failure count.
                self._consecutive_failures = 0
            telemetry.counter("solver.circuit_breaker.skips").inc()
            result = self.secondary.solve(program, tol=tol)
            return dataclasses.replace(
                result,
                primary_error=f"{self.primary.name}: skipped (circuit open)",
            )
        try:
            result = self.primary.solve(program, tol=tol)
        except SolverError as exc:
            return self.absorb_primary_failure(program, tol=tol, error=exc)
        else:
            self._consecutive_failures = 0
            return result

    def absorb_primary_failure(
        self, program: ConvexProgram, *, tol: float, error: SolverError
    ) -> SolverResult:
        """Record a primary failure that happened elsewhere and fall back.

        The batched shard path (:mod:`repro.aggregate.sharding`) attempts
        the primary inside a stacked :func:`repro.solvers.batched.solve_batch`
        call rather than through :meth:`solve`; handing the failure to this
        method runs the exact failure bookkeeping of the sequential path —
        fallback counters and events, circuit-breaker accounting, the
        secondary solve, and ``primary_error`` on the result — without a
        doomed second primary attempt.
        """
        telemetry = get_registry()
        message = f"{self.primary.name}: {error}"
        logger.warning(
            "primary backend failed, falling back to %s (%s)",
            self.secondary.name,
            message,
        )
        self._consecutive_failures += 1
        telemetry.counter("solver.fallbacks").inc()
        if telemetry.enabled:
            telemetry.event(
                "solver.fallback", primary=self.primary.name, error=str(error)
            )
        if self._consecutive_failures >= self.failure_threshold:
            self._skips_remaining = self.cooldown
            telemetry.counter("solver.circuit_breaker.opened").inc()
            if telemetry.enabled:
                telemetry.event(
                    "solver.circuit_open",
                    primary=self.primary.name,
                    failures=self._consecutive_failures,
                    cooldown=self.cooldown,
                )
            logger.warning(
                "primary backend %s failed %d times in a row; skipping it "
                "for the next %d solves",
                self.primary.name,
                self._consecutive_failures,
                self.cooldown,
            )
        result = self.secondary.solve(program, tol=tol)
        return dataclasses.replace(result, primary_error=message)

    def absorb_primary_success(self, result: SolverResult) -> SolverResult:
        """Record a primary success that happened elsewhere (batched path)."""
        self._consecutive_failures = 0
        return result


register_backend("scipy", ScipyTrustConstrBackend())
register_backend("ipm", InteriorPointBackend())
register_backend("auto", FallbackBackend(InteriorPointBackend(), ScipyTrustConstrBackend()))


def default_backend() -> ConvexBackend:
    """The backend used when an algorithm is not given one explicitly."""
    return get_backend("auto")


def reset_session(backend: ConvexBackend | str) -> None:
    """Session-boundary reset for any backend (duck-typed, never raises).

    Accepts a backend instance or a registry name. Backends without
    cross-solve state are a no-op; wrappers with a ``reset_session`` (or
    legacy ``reset_circuit``) hook are cleared. The live service calls
    this when a client issues a session reset (docs/SERVING.md).
    """
    if isinstance(backend, str):
        backend = get_backend(backend)
    reset = getattr(backend, "reset_session", None)
    if reset is None:
        reset = getattr(backend, "reset_circuit", None)
    if reset is not None:
        reset()
