"""Backend registry: look up convex backends by name, pick sensible defaults."""

from __future__ import annotations

import dataclasses
import logging

from .base import ConvexBackend, ConvexProgram, SolverError, SolverResult
from .interior_point import InteriorPointBackend
from .scipy_backend import ScipyTrustConstrBackend

logger = logging.getLogger(__name__)

_BACKENDS: dict[str, ConvexBackend] = {}


def register_backend(name: str, backend: ConvexBackend) -> None:
    """Register (or replace) a backend under ``name``."""
    _BACKENDS[name] = backend


def get_backend(name: str) -> ConvexBackend:
    """Look up a backend by name; raises KeyError with the known names."""
    try:
        return _BACKENDS[name]
    except KeyError:
        known = ", ".join(sorted(_BACKENDS))
        raise KeyError(f"unknown backend {name!r}; known: {known}") from None


def available_backends() -> list[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


class FallbackBackend:
    """Try a fast specialized backend, fall back to a robust one.

    The structured interior-point method requires programs carrying the P2
    structure and can (rarely) hit numerically hard barrier subproblems; the
    SciPy backend is slower but general. This wrapper gives the best of
    both and is the project default.
    """

    def __init__(self, primary: ConvexBackend, secondary: ConvexBackend) -> None:
        self.primary = primary
        self.secondary = secondary
        self.name = f"{primary.name}+{secondary.name}"

    def solve(self, program: ConvexProgram, *, tol: float = 1e-8) -> SolverResult:
        """Try the primary backend; on SolverError, retry with the secondary.

        The primary's error is not discarded: it is logged and attached to
        the returned result as ``SolverResult.primary_error`` so callers
        can see *why* the slow path ran.
        """
        try:
            return self.primary.solve(program, tol=tol)
        except SolverError as exc:
            message = f"{self.primary.name}: {exc}"
            logger.warning(
                "primary backend failed, falling back to %s (%s)",
                self.secondary.name,
                message,
            )
            result = self.secondary.solve(program, tol=tol)
            return dataclasses.replace(result, primary_error=message)


register_backend("scipy", ScipyTrustConstrBackend())
register_backend("ipm", InteriorPointBackend())
register_backend("auto", FallbackBackend(InteriorPointBackend(), ScipyTrustConstrBackend()))


def default_backend() -> ConvexBackend:
    """The backend used when an algorithm is not given one explicitly."""
    return get_backend("auto")
