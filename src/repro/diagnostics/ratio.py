"""Empirical competitive ratio vs the certified Theorem-2 bound.

Theorem 2 certifies that solving P2 optimally per slot is
``r = 1 + gamma |I|``-competitive against the offline P0 optimum, with
``gamma`` computed from ``eps1``, ``eps2`` and the capacities
(:func:`repro.core.bounds.competitive_ratio_bound`). Because the online
algorithm is causal, the guarantee applies to every *prefix* of the
arrival sequence too: the trajectory it produces on slots ``[0, t]`` is
exactly what it would produce if the horizon ended at ``t``. This module
exploits that to turn one run into a whole trace of (online cost /
offline lower bound) points, each individually checked against the bound
— a slot where the certified bound is violated indicates a bug (P2 not
solved to optimality, accounting drift, or a mis-computed gamma), never
an unlucky input.

The offline lower bound reuses :class:`repro.baselines.OfflineOptimal`
(one prefix LP per checked slot; subsample with ``every`` on long
horizons).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.offline import OfflineOptimal
from ..core.allocation import AllocationSchedule
from ..core.bounds import competitive_ratio_bound
from ..core.costs import cost_breakdown
from ..core.problem import ProblemInstance
from ..telemetry import get_registry

#: Relative tolerance when comparing a ratio against the certified bound
#: (both sides carry LP-solver noise of this order).
BOUND_RTOL = 1e-9


@dataclass(frozen=True)
class RatioPoint:
    """The running competitive ratio after one prefix of the horizon.

    Attributes:
        slot: last slot of the prefix (inclusive, 0-based).
        online_cost: cumulative weighted P0 cost of the online trajectory
            over slots ``[0, slot]``.
        offline_cost: the offline P0 optimum of the prefix instance.
    """

    slot: int
    online_cost: float
    offline_cost: float

    @property
    def ratio(self) -> float:
        """online / offline (``inf`` when the offline optimum is zero)."""
        if self.offline_cost <= 0.0:
            return float("inf") if self.online_cost > 0.0 else 1.0
        return self.online_cost / self.offline_cost


@dataclass(frozen=True)
class RatioTrace:
    """A run's competitive-ratio trajectory plus its certified bound.

    Attributes:
        points: prefix ratios in slot order (the last one is the run's
            empirical competitive ratio).
        bound: Theorem 2's ``1 + gamma |I|`` for the instance and epsilons.
    """

    points: tuple[RatioPoint, ...]
    bound: float

    @property
    def final_ratio(self) -> float:
        """The full-horizon empirical competitive ratio."""
        return self.points[-1].ratio if self.points else float("nan")

    @property
    def worst_ratio(self) -> float:
        """The largest prefix ratio along the trace."""
        return max((p.ratio for p in self.points), default=float("nan"))

    def violations(self, rtol: float = BOUND_RTOL) -> list[RatioPoint]:
        """Prefix points whose ratio exceeds the certified bound."""
        return [p for p in self.points if p.ratio > self.bound * (1.0 + rtol)]

    @property
    def certified(self) -> bool:
        """Whether every prefix ratio respects the Theorem-2 bound."""
        return not self.violations()


def competitive_ratio_trace(
    instance: ProblemInstance,
    schedule: AllocationSchedule,
    *,
    eps1: float,
    eps2: float,
    every: int = 1,
) -> RatioTrace:
    """Track the running empirical ratio of an online trajectory.

    Args:
        instance: the full-horizon problem instance.
        schedule: the online algorithm's trajectory on it.
        eps1, eps2: the regularization parameters the run used (they set
            the certified bound).
        every: check every ``every``-th prefix (the final slot is always
            checked); each check solves one offline prefix LP.
    """
    if every < 1:
        raise ValueError("every must be at least 1")
    per_slot = cost_breakdown(schedule, instance).total_per_slot
    num_slots = int(per_slot.shape[0])
    offline = OfflineOptimal()
    points = []
    for t in range(num_slots):
        if (t + 1) % every and t != num_slots - 1:
            continue
        prefix = (
            instance if t == num_slots - 1 else instance.slice_slots(0, t + 1)
        )
        points.append(
            RatioPoint(
                slot=t,
                online_cost=float(per_slot[: t + 1].sum()),
                offline_cost=offline.optimal_cost(prefix),
            )
        )
    return RatioTrace(
        points=tuple(points),
        bound=competitive_ratio_bound(instance, eps1, eps2),
    )


def record_ratio_trace(trace: RatioTrace, registry=None, *, stream: bool = False) -> None:
    """Emit a ratio trace into the (active) telemetry registry.

    Each prefix ratio lands in the ``diag.ratio`` histogram; bound
    violations increment ``diag.ratio.violations`` and emit one
    ``diag.ratio.violation`` event each; the whole trace is persisted as a
    single ``diag.ratio.trace`` event. A no-op under the null registry.

    With ``stream=True`` every prefix additionally emits one
    ``diag.ratio.point`` event (``slot``/``ratio``/``bound``) — the live
    ratio feed that ``repro-edge watch`` renders and the watchdog's
    :class:`repro.telemetry.watchdog.RatioBoundRule` checks as the
    manifest streams.
    """
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    for point in trace.points:
        ratio = point.ratio
        if np.isfinite(ratio):
            registry.histogram("diag.ratio").observe(ratio)
        if stream:
            registry.event(
                "diag.ratio.point",
                slot=point.slot,
                ratio=ratio,
                bound=trace.bound,
            )
    for point in trace.violations():
        registry.counter("diag.ratio.violations").inc()
        registry.event(
            "diag.ratio.violation",
            slot=point.slot,
            ratio=point.ratio,
            bound=trace.bound,
        )
    registry.gauge("diag.ratio.final").set(trace.final_ratio)
    registry.gauge("diag.ratio.bound").set(trace.bound)
    registry.event(
        "diag.ratio.trace",
        bound=trace.bound,
        final_ratio=trace.final_ratio,
        worst_ratio=trace.worst_ratio,
        certified=trace.certified,
        points=[
            {
                "slot": p.slot,
                "online_cost": p.online_cost,
                "offline_cost": p.offline_cost,
                "ratio": p.ratio,
            }
            for p in trace.points
        ],
    )
