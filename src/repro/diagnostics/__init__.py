"""Algorithm-quality observability: optimality certificates, competitive-
ratio tracking, and solver convergence summaries.

Where :mod:`repro.telemetry` observes *how the code ran* (wall time,
counters, traces), this package observes *how good the answers were*:

* :mod:`repro.diagnostics.certificates` — per-slot KKT residuals and a
  rigorous duality-gap bound for every P2 solve, from the backends' own
  multipliers (with a finite-difference cross-check for the SciPy path);
* :mod:`repro.diagnostics.ratio` — the running empirical competitive
  ratio against Theorem 2's certified ``1 + gamma |I|`` bound, flagging
  any prefix that violates it;
* :mod:`repro.diagnostics.convergence` — summaries of the interior-point
  solver's per-iteration residual series (recorded into manifests as
  ``solver.ipm.trace`` events).

Everything observes; nothing feeds back. Runs are bit-identical with
diagnostics on or off, pinned by ``tests/diagnostics/``.
"""

from .certificates import (
    DEFAULT_GAP_TOL,
    CertificateHook,
    SlotCertificate,
    certify_schedule,
    certify_solution,
    duality_gap_bound,
    finite_difference_residual,
    lp_multipliers,
    record_certificate,
    recover_multipliers,
    worst_certificate,
)
from .convergence import (
    ConvergenceSummary,
    iteration_series,
    summarize_convergence,
    trace_events,
)
from .ratio import (
    RatioPoint,
    RatioTrace,
    competitive_ratio_trace,
    record_ratio_trace,
)

__all__ = [
    "DEFAULT_GAP_TOL",
    "CertificateHook",
    "SlotCertificate",
    "certify_schedule",
    "certify_solution",
    "duality_gap_bound",
    "finite_difference_residual",
    "lp_multipliers",
    "record_certificate",
    "recover_multipliers",
    "worst_certificate",
    "ConvergenceSummary",
    "iteration_series",
    "summarize_convergence",
    "trace_events",
    "RatioPoint",
    "RatioTrace",
    "competitive_ratio_trace",
    "record_ratio_trace",
]
