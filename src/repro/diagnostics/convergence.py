"""Solver convergence trajectories, read back from telemetry.

The structured IPM emits one ``solver.ipm.trace`` event per solve when
telemetry is active (see ``repro.solvers.interior_point``): the barrier
parameter, cumulative Newton iterations, and final Newton decrement of
every outer iteration. Wall time alone cannot distinguish "the machine was
busy" from "the solver started struggling"; these series can. This module
summarizes them — from a live registry, a list of events, or a loaded
manifest — so benchmark records and the ``doctor`` report can gate on
*behavioural* regressions (iteration blow-ups, non-decreasing barrier
schedules) deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ConvergenceSummary:
    """Aggregate view of every recorded interior-point solve.

    Attributes:
        solves: number of ``solver.ipm.trace`` events seen.
        total_iterations: summed Newton iterations across solves.
        max_iterations: Newton iterations of the heaviest solve.
        mean_iterations: mean Newton iterations per solve (0 when empty).
        max_final_mu: largest terminal barrier parameter (how "unfinished"
            the loosest solve was).
        max_final_decrement: largest terminal Newton decrement — should be
            ~0 at convergence; persistent large values flag stalls.
        non_decreasing_mu: solves whose barrier parameter failed to
            strictly decrease between outer iterations (0 for a healthy
            barrier schedule).
    """

    solves: int
    total_iterations: int
    max_iterations: int
    mean_iterations: float
    max_final_mu: float
    max_final_decrement: float
    non_decreasing_mu: int

    def as_dict(self) -> dict:
        """Plain-dict form for bench records and manifest events."""
        return {
            "solves": self.solves,
            "total_iterations": self.total_iterations,
            "max_iterations": self.max_iterations,
            "mean_iterations": self.mean_iterations,
            "max_final_mu": self.max_final_mu,
            "max_final_decrement": self.max_final_decrement,
            "non_decreasing_mu": self.non_decreasing_mu,
        }


def trace_events(source) -> list[dict]:
    """Extract ``solver.ipm.trace`` events from any telemetry source.

    Accepts a loaded manifest (:class:`repro.telemetry.manifest.RunRecord`),
    a live :class:`repro.telemetry.MetricsRegistry`, or a plain iterable
    of event dicts.
    """
    if hasattr(source, "events_of_type"):  # RunRecord
        return source.events_of_type("solver.ipm.trace")
    events: Iterable[dict] = getattr(source, "events", source)
    return [e for e in events if e.get("type") == "solver.ipm.trace"]


def summarize_convergence(source) -> ConvergenceSummary:
    """Summarize every interior-point solve recorded in ``source``."""
    events = trace_events(source)
    iterations = [int(e.get("iterations", 0)) for e in events]
    final_mu = []
    final_decrement = []
    non_decreasing = 0
    for event in events:
        series = event.get("trace") or []
        if series:
            final_mu.append(float(series[-1].get("mu", 0.0)))
            final_decrement.append(float(series[-1].get("decrement", 0.0)))
            mus = [float(step.get("mu", 0.0)) for step in series]
            if any(b >= a for a, b in zip(mus, mus[1:])):
                non_decreasing += 1
    return ConvergenceSummary(
        solves=len(events),
        total_iterations=sum(iterations),
        max_iterations=max(iterations, default=0),
        mean_iterations=(
            sum(iterations) / len(iterations) if iterations else 0.0
        ),
        max_final_mu=max(final_mu, default=0.0),
        max_final_decrement=max(final_decrement, default=0.0),
        non_decreasing_mu=non_decreasing,
    )


def iteration_series(source) -> list[int]:
    """Newton iterations per solve, in recorded order."""
    return [int(e.get("iterations", 0)) for e in trace_events(source)]
