"""Per-slot optimality certificates for the P2 subproblem.

The online algorithm's guarantee (Theorem 2) assumes every per-slot
subproblem P2 is solved *optimally*. This module measures how true that is
at runtime, turning each solve into a :class:`SlotCertificate` carrying

* the **KKT stationarity residual** (paper eq. 15a) — how far the reduced
  gradient ``g = grad f - theta + rho`` is from satisfying dual
  feasibility and complementarity (see
  :meth:`repro.core.subproblem.RegularizedSubproblem.kkt_stationarity_residual`);
* a **rigorous duality-gap bound**: for any multipliers ``theta, rho >= 0``
  and any feasible ``x``, convexity of f gives, for every feasible ``y``
  (which satisfies ``0 <= y_ij`` and ``sum_j y_ij <= C_i``),

      f(y) >= f(x) + grad(x)·(y - x)
           >= f(x) - [ g·x + theta·s_demand + rho·s_capacity
                       + sum_i C_i max_j (-g_ij)+ ]

  where ``s_demand = sum_i x_ij - lambda_j`` and ``s_capacity = C_i -
  sum_j x_ij`` are the constraint slacks at ``x`` (the last term bounds
  ``sum_j (-g_ij) y_ij`` per cloud, since cloud i's row of y sums to at
  most ``C_i``). The bracket is therefore a certified upper bound on
  ``f(x) - min P2``. At an interior-point optimum every term is of order
  mu, so the bound collapses to ``~ mu * m`` — the solver's own
  termination target.

Multipliers come from three sources, cheapest first, and the certificate
keeps whichever bound is tightest:

1. ``"solver"`` — the backend's own duals (the structured IPM and the
   SciPy backend both report the demand/capacity families, see
   ``SolverResult.duals``); barrier duals at near-zero slacks carry
   elementwise noise that the bound amplifies by the capacities;
2. ``"recovered"`` — a least-squares fit of the stationarity system over
   the support, the same construction Lemma 2's dual argument uses;
3. ``"lp"`` — the exact duals of the *linearized* subproblem
   ``min grad(x)·y`` over the feasible set (one small HiGHS solve, only
   run when the cheap sources stay above the target tolerance). With
   these multipliers the closed-form bound equals the Frank-Wolfe gap
   ``grad·x - min_y grad·y``, the tightest certificate one gradient can
   buy.

Solutions produced without trustworthy analytic gradients (the SciPy
path) can additionally be checked against a finite-difference gradient
(:func:`finite_difference_residual`).

Everything here *observes* — no certificate feeds back into any
computation, so runs are bit-identical with certification on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..core.allocation import AllocationSchedule
from ..core.problem import ProblemInstance
from ..core.subproblem import RegularizedSubproblem
from ..simulation.hooks import SlotHook
from ..solvers.base import SolverResult
from ..telemetry import get_registry

#: Default acceptance threshold on the *relative* duality gap; the IPM
#: terminates at gap ~ tol * scale with tol = 1e-8, so 1e-6 gives two
#: orders of headroom while still catching genuinely unconverged solves.
DEFAULT_GAP_TOL = 1e-6


@dataclass(frozen=True)
class SlotCertificate:
    """Optimality evidence for one P2 solve.

    Attributes:
        slot: trajectory position of the solve (0-based).
        objective: P2 objective value at the certified point.
        kkt_residual: stationarity/complementarity residual (eq. 15a form).
        duality_gap: certified upper bound on ``f(x) - min P2`` (absolute).
        relative_gap: ``duality_gap / max(1, |objective|)``.
        fd_residual: stationarity residual recomputed with a central
            finite-difference gradient (``None`` when not requested) — an
            analytic-gradient-independent cross-check.
        backend: solver backend that produced the point.
        source: where the multipliers came from — ``"solver"`` (backend
            duals), ``"recovered"`` (least-squares fit from the primal),
            or ``"lp"`` (exact duals of the linearized subproblem).
    """

    slot: int
    objective: float
    kkt_residual: float
    duality_gap: float
    relative_gap: float
    fd_residual: float | None = None
    backend: str = ""
    source: str = "solver"

    def ok(self, tol: float = DEFAULT_GAP_TOL) -> bool:
        """Whether the relative duality gap is within ``tol``."""
        return self.relative_gap <= tol


def recover_multipliers(
    subproblem: RegularizedSubproblem,
    flat: np.ndarray,
    *,
    support_tol: float = 1e-6,
    binding_tol: float = 1e-5,
) -> tuple[np.ndarray, np.ndarray]:
    """Least-squares KKT multipliers (theta, rho) for one solved subproblem.

    Fits the stationarity system ``grad_ij = theta_j - rho_i`` over the
    support ``x_ij > support_tol``, pinning ``rho_i = 0`` at clouds whose
    capacity is slack — the single-slot form of
    :func:`repro.core.duality.recover_slot_duals`. Results are clipped to
    the dual cone (``>= 0``).
    """
    num_clouds, num_users = subproblem.num_clouds, subproblem.num_users
    x = np.asarray(flat, dtype=float).reshape(num_clouds, num_users)
    grad = subproblem.gradient(flat).reshape(num_clouds, num_users)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    binding = capacities - x.sum(axis=1) <= binding_tol
    rows, rhs = [], []
    for i, j in zip(*np.nonzero(x > support_tol)):
        row = np.zeros(num_users + num_clouds)
        row[j] = 1.0
        if binding[i]:
            row[num_users + i] = -1.0
        rows.append(row)
        rhs.append(grad[i, j])
    theta = np.zeros(num_users)
    rho = np.zeros(num_clouds)
    if rows:
        solution, *_ = np.linalg.lstsq(np.array(rows), np.array(rhs), rcond=None)
        theta = np.maximum(solution[:num_users], 0.0)
        rho = np.maximum(np.where(binding, solution[num_users:], 0.0), 0.0)
    return theta, rho


def lp_multipliers(
    subproblem: RegularizedSubproblem, flat: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact duals of the linearized subproblem ``min grad(x)·y``.

    Solves the transportation-style LP over the feasible set (one HiGHS
    call at I x J size) and reads the constraint marginals back as
    ``(theta, rho)``. Plugged into :func:`duality_gap_bound`, these
    multipliers realize the Frank-Wolfe gap ``grad·x - min_y grad·y`` —
    the tightest bound obtainable from one gradient evaluation — at the
    price of the LP solve, so :func:`certify_solution` only escalates to
    them when the cheaper multiplier sources stay loose.
    """
    from ..solvers.linear import LinearProgramBuilder

    num_clouds, num_users = subproblem.num_clouds, subproblem.num_users
    grad = subproblem.gradient(np.asarray(flat, dtype=float))
    builder = LinearProgramBuilder()
    indices = builder.add_block("y", num_clouds, num_users).indices()
    builder.set_cost(indices, grad)
    builder.add_le_rows(
        indices, 1.0, np.asarray(subproblem.capacities, dtype=float)
    )
    builder.add_ge_rows(
        indices.T, 1.0, np.asarray(subproblem.workloads, dtype=float)
    )
    result = builder.solve()
    marginals = result.duals.get("inequality")
    if marginals is None:  # ancient scipy without marginals: no candidate
        return np.zeros(num_users), np.zeros(num_clouds)
    # Row order: capacity (<=) rows first, then the negated demand rows;
    # HiGHS marginals are <= 0 for both, so negate into the dual cone.
    rho = np.maximum(-marginals[:num_clouds], 0.0)
    theta = np.maximum(-marginals[num_clouds:], 0.0)
    return theta, rho


def duality_gap_bound(
    subproblem: RegularizedSubproblem,
    flat: np.ndarray,
    theta: np.ndarray,
    rho: np.ndarray,
) -> float:
    """Certified upper bound on ``f(x) - min P2`` (see module docstring).

    Valid for any ``theta, rho >= 0`` and any (near-)feasible ``x``; tiny
    constraint violations at solver tolerance only perturb the bound at
    the same order. Never negative.
    """
    num_clouds, num_users = subproblem.num_clouds, subproblem.num_users
    x = np.asarray(flat, dtype=float).reshape(num_clouds, num_users)
    grad = subproblem.gradient(flat).reshape(num_clouds, num_users)
    theta = np.asarray(theta, dtype=float)
    rho = np.asarray(rho, dtype=float)
    g = grad - theta[None, :] + rho[:, None]
    workloads = np.asarray(subproblem.workloads, dtype=float)
    capacities = np.asarray(subproblem.capacities, dtype=float)
    slack_demand = np.maximum(x.sum(axis=0) - workloads, 0.0)
    slack_capacity = np.maximum(capacities - x.sum(axis=1), 0.0)
    gap = float((g * x).sum())
    gap += float(theta @ slack_demand) + float(rho @ slack_capacity)
    # Per cloud, any feasible y spends at most C_i across its row, so the
    # worst negative reduced gradient of the row bounds the whole row.
    gap += float(capacities @ np.maximum(-g, 0.0).max(axis=1))
    return max(gap, 0.0)


def finite_difference_residual(
    subproblem: RegularizedSubproblem,
    flat: np.ndarray,
    theta: np.ndarray,
    rho: np.ndarray,
    *,
    step: float = 1e-7,
) -> float:
    """The stationarity residual with a central finite-difference gradient.

    Cross-checks the analytic gradient the other certificates rely on:
    useful for the SciPy backend, whose solution quality depends on that
    gradient being right. O(n) objective evaluations of O(n) each.
    """
    flat = np.asarray(flat, dtype=float)
    fd_grad = np.empty_like(flat)
    for index in range(flat.size):
        bump = np.zeros_like(flat)
        bump[index] = step
        fd_grad[index] = (
            subproblem.objective(flat + bump) - subproblem.objective(flat - bump)
        ) / (2.0 * step)
    num_clouds, num_users = subproblem.num_clouds, subproblem.num_users
    x = flat.reshape(num_clouds, num_users)
    g = (
        fd_grad.reshape(num_clouds, num_users)
        - np.asarray(theta, dtype=float)[None, :]
        + np.asarray(rho, dtype=float)[:, None]
    )
    dual_infeasibility = np.maximum(0.0, -g)
    complementarity = np.minimum(np.abs(x), np.abs(g))
    return float(np.maximum(dual_infeasibility, complementarity).max())


def certify_solution(
    subproblem: RegularizedSubproblem,
    solution: SolverResult | np.ndarray,
    *,
    slot: int = 0,
    finite_difference: bool | None = None,
) -> SlotCertificate:
    """Build the optimality certificate for one solved subproblem.

    Args:
        subproblem: the P2 instance that was solved.
        solution: the backend's :class:`SolverResult` or a bare flattened
            primal point. Backend duals (when the result names the
            demand/capacity families) and least-squares recovered
            multipliers are both tried; the certificate keeps whichever
            bound is tighter (``source`` records the winner).
        slot: trajectory position recorded on the certificate.
        finite_difference: also run the finite-difference stationarity
            cross-check. ``None`` (default) enables it exactly when the
            solving backend was not the structured IPM — the SciPy path is
            the one whose analytic gradients deserve independent scrutiny.
    """
    if isinstance(solution, SolverResult):
        flat = np.asarray(solution.x, dtype=float)
        duals = solution.duals
        backend = solution.backend
    else:
        flat = np.asarray(solution, dtype=float)
        duals = {}
        backend = ""
    # Candidate multipliers, cheapest first: the backend's own (when it
    # names the demand/capacity families), then the least-squares recovery
    # from the primal. Every candidate yields a *valid* bound, so keep
    # whichever certifies tighter; when both stay above the target
    # tolerance, escalate to the linearized-LP duals (Frank-Wolfe gap).
    candidates: list[tuple[np.ndarray, np.ndarray, str]] = []
    if "demand" in duals and "capacity" in duals:
        candidates.append(
            (
                np.maximum(np.asarray(duals["demand"], dtype=float), 0.0),
                np.maximum(np.asarray(duals["capacity"], dtype=float), 0.0),
                "solver",
            )
        )
    candidates.append((*recover_multipliers(subproblem, flat), "recovered"))
    objective = float(subproblem.objective(flat))
    scale = max(1.0, abs(objective))
    scored = [
        (duality_gap_bound(subproblem, flat, th, rh), th, rh, src)
        for th, rh, src in candidates
    ]
    gap, theta, rho, source = min(scored, key=lambda entry: entry[0])
    if gap > DEFAULT_GAP_TOL * scale:
        theta_lp, rho_lp = lp_multipliers(subproblem, flat)
        gap_lp = duality_gap_bound(subproblem, flat, theta_lp, rho_lp)
        if gap_lp < gap:
            gap, theta, rho, source = gap_lp, theta_lp, rho_lp, "lp"
    if finite_difference is None:
        finite_difference = bool(backend) and "ipm" not in backend
    return SlotCertificate(
        slot=slot,
        objective=objective,
        kkt_residual=subproblem.kkt_stationarity_residual(flat, theta, rho),
        duality_gap=gap,
        relative_gap=gap / max(1.0, abs(objective)),
        fd_residual=(
            finite_difference_residual(subproblem, flat, theta, rho)
            if finite_difference
            else None
        ),
        backend=backend,
        source=source,
    )


def record_certificate(certificate: SlotCertificate, registry=None) -> None:
    """Emit a certificate into the (active) telemetry registry.

    Records the ``diag.kkt.residual`` and ``diag.duality_gap`` histograms
    (the latter observes the *relative* gap, the quantity thresholds apply
    to) and one ``diag.certificate`` manifest event. A no-op under the
    null registry.
    """
    registry = registry if registry is not None else get_registry()
    if not registry.enabled:
        return
    registry.histogram("diag.kkt.residual").observe(certificate.kkt_residual)
    registry.histogram("diag.duality_gap").observe(certificate.relative_gap)
    payload = {
        "slot": certificate.slot,
        "objective": certificate.objective,
        "kkt_residual": certificate.kkt_residual,
        "duality_gap": certificate.duality_gap,
        "relative_gap": certificate.relative_gap,
        "backend": certificate.backend,
        "source": certificate.source,
    }
    if certificate.fd_residual is not None:
        payload["fd_residual"] = certificate.fd_residual
    registry.event("diag.certificate", **payload)


def certify_schedule(
    instance: ProblemInstance,
    schedule: AllocationSchedule,
    *,
    eps1: float,
    eps2: float,
    solves: Sequence[SolverResult] | None = None,
) -> list[SlotCertificate]:
    """Certify every slot of an online trajectory post hoc.

    Rebuilds each slot's P2 subproblem at the trajectory's previous
    allocation. When ``solves`` (e.g.
    ``OnlineRegularizedAllocator.last_solves``) is given, certificates are
    evaluated at the *solver's* points with the solver's multipliers —
    the raw optima before the exact-feasibility repair; otherwise at the
    schedule's (repaired) decisions with recovered multipliers.
    """
    x, x_prev = schedule.with_previous()
    num_slots = x.shape[0]
    if solves is not None and len(solves) != num_slots:
        raise ValueError(
            f"got {len(solves)} solver results for {num_slots} slots"
        )
    certificates = []
    for t in range(num_slots):
        subproblem = RegularizedSubproblem.from_instance(
            instance, t, x_prev[t], eps1=eps1, eps2=eps2
        )
        solution: SolverResult | np.ndarray = (
            solves[t] if solves is not None else x[t].ravel()
        )
        certificates.append(certify_solution(subproblem, solution, slot=t))
    return certificates


class CertificateHook(SlotHook):
    """A :class:`repro.simulation.hooks.SlotHook` that certifies every slot.

    Plugs into :func:`repro.simulation.spine.simulate` (via
    ``run_algorithm(..., hooks=[CertificateHook()])``) and works with *any*
    controller: slots driven by the regularized controller are certified at
    the solver's own point and multipliers (``controller.last_result``);
    any other controller's decisions are certified against the P2 optimum
    with recovered multipliers — which then measures how far that
    algorithm's choice sits from the regularized one, not solver quality.

    Args:
        eps1, eps2: regularization parameters defining the P2 each slot is
            certified against. ``None`` (default) adopts the controller's
            own ``algorithm.eps1/eps2`` at run start, falling back to the
            package default.
        record: also emit each certificate into the active telemetry
            registry (:func:`record_certificate`).
    """

    def __init__(
        self,
        *,
        eps1: float | None = None,
        eps2: float | None = None,
        record: bool = True,
    ) -> None:
        self.certificates: list[SlotCertificate] = []
        self.eps1 = eps1
        self.eps2 = eps2
        self._record = record
        self._system = None
        self._controller = None
        self._x_prev: np.ndarray | None = None

    def on_run_start(self, system, controller) -> None:
        """Adopt the run's epsilons and reset the trajectory state."""
        from ..core.regularization import DEFAULT_EPSILON

        self._system = system
        self._controller = controller
        self._x_prev = system.zero_allocation()
        self.certificates = []
        algorithm = getattr(controller, "algorithm", None)
        if self.eps1 is None:
            self.eps1 = getattr(algorithm, "eps1", DEFAULT_EPSILON)
        if self.eps2 is None:
            self.eps2 = getattr(algorithm, "eps2", DEFAULT_EPSILON)

    def on_slot_end(self, observation, x_t, costs) -> None:
        """Certify the slot that just completed."""
        from ..simulation.observations import single_slot_instance

        instance = single_slot_instance(self._system, observation)
        subproblem = RegularizedSubproblem.from_instance(
            instance, 0, self._x_prev, eps1=self.eps1, eps2=self.eps2
        )
        result = getattr(self._controller, "last_result", None)
        solution: SolverResult | np.ndarray = (
            result
            if isinstance(result, SolverResult)
            else np.asarray(x_t, dtype=float).ravel()
        )
        certificate = certify_solution(
            subproblem, solution, slot=len(self.certificates)
        )
        self.certificates.append(certificate)
        if self._record:
            record_certificate(certificate)
        self._x_prev = np.asarray(x_t, dtype=float).copy()

    @property
    def worst(self) -> SlotCertificate | None:
        """The run's worst certificate by relative gap."""
        return worst_certificate(self.certificates)


def worst_certificate(
    certificates: Sequence[SlotCertificate],
) -> SlotCertificate | None:
    """The certificate with the largest relative gap (``None`` when empty)."""
    if not certificates:
        return None
    return max(certificates, key=lambda certificate: certificate.relative_gap)
