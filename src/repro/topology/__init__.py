"""Edge-cloud topologies: site locations, adjacency, and delay matrices."""

from .delays import inter_cloud_delay_matrix, validate_delay_matrix
from .generators import grid_topology, random_geometric_topology, ring_topology
from .geo import EARTH_RADIUS_KM, GeoPoint, haversine_km, haversine_km_vec, pairwise_distance_km
from .metro import (
    ROME_METRO_LINE_A,
    ROME_METRO_LINE_B,
    ROME_METRO_STATIONS,
    Topology,
    rome_metro_topology,
)

__all__ = [
    "EARTH_RADIUS_KM",
    "GeoPoint",
    "ROME_METRO_LINE_A",
    "ROME_METRO_LINE_B",
    "ROME_METRO_STATIONS",
    "Topology",
    "grid_topology",
    "haversine_km",
    "haversine_km_vec",
    "inter_cloud_delay_matrix",
    "pairwise_distance_km",
    "random_geometric_topology",
    "ring_topology",
    "rome_metro_topology",
    "validate_delay_matrix",
]
