"""Geographic primitives used by topologies and mobility models.

The paper measures network delay "by the geographical distance between any
two entities based on their GPS locations" (Section V-A). This module
provides the point type and the haversine great-circle distance that every
delay computation in the repository is built on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

#: Mean Earth radius in kilometers (IUGG value), used by haversine.
EARTH_RADIUS_KM = 6371.0088


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} outside [-90, 90]")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} outside [-180, 180]")

    def distance_km(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in kilometers."""
        return haversine_km(self.lat, self.lon, other.lat, other.lon)


def haversine_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance between two (lat, lon) pairs in kilometers.

    Uses the haversine formula, which is numerically stable for the small
    (city-scale) distances this project works with.
    """
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlmb = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(a)))


def haversine_km_vec(
    lat1: np.ndarray, lon1: np.ndarray, lat2: np.ndarray, lon2: np.ndarray
) -> np.ndarray:
    """Vectorized haversine distance (kilometers) with numpy broadcasting."""
    phi1 = np.radians(np.asarray(lat1, dtype=float))
    phi2 = np.radians(np.asarray(lat2, dtype=float))
    dphi = phi2 - phi1
    dlmb = np.radians(np.asarray(lon2, dtype=float) - np.asarray(lon1, dtype=float))
    a = np.sin(dphi / 2.0) ** 2 + np.cos(phi1) * np.cos(phi2) * np.sin(dlmb / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_KM * np.arcsin(np.minimum(1.0, np.sqrt(a)))


def pairwise_distance_km(points: list[GeoPoint]) -> np.ndarray:
    """Symmetric matrix of pairwise haversine distances in kilometers.

    The diagonal is exactly zero, matching the paper's convention
    ``d(i, i) = 0`` for inter-cloud delays.
    """
    lats = np.array([p.lat for p in points], dtype=float)
    lons = np.array([p.lon for p in points], dtype=float)
    dist = haversine_km_vec(lats[:, None], lons[:, None], lats[None, :], lons[None, :])
    np.fill_diagonal(dist, 0.0)
    return dist
