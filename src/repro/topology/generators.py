"""Synthetic topology generators for experiments beyond the Rome deployment.

These let the experiment harness vary the number of edge clouds and their
spatial layout while keeping the same :class:`~repro.topology.metro.Topology`
interface used everywhere else.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .geo import GeoPoint
from .metro import Topology


def grid_topology(
    rows: int,
    cols: int,
    *,
    origin: tuple[float, float] = (41.88, 12.45),
    spacing_km: float = 1.0,
) -> Topology:
    """A rows x cols grid of edge clouds with 4-neighbour adjacency.

    Sites are laid out on a regular lattice anchored at ``origin``
    (lat, lon); ``spacing_km`` is the approximate distance between adjacent
    sites. Useful for controlled scaling experiments.
    """
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    lat0, lon0 = origin
    # Degrees per kilometer: 1 deg latitude ~ 111.32 km; longitude scaled by
    # cos(latitude).
    dlat = spacing_km / 111.32
    dlon = spacing_km / (111.32 * np.cos(np.radians(lat0)))
    names: list[str] = []
    points: list[GeoPoint] = []
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            idx = r * cols + c
            names.append(f"grid-{r}-{c}")
            points.append(GeoPoint(lat0 + r * dlat, lon0 + c * dlon))
            graph.add_node(idx)
            if c > 0:
                graph.add_edge(idx, idx - 1)
            if r > 0:
                graph.add_edge(idx, idx - cols)
    return Topology(names=names, points=points, graph=graph)


def ring_topology(
    num_sites: int,
    *,
    center: tuple[float, float] = (41.89, 12.48),
    radius_km: float = 3.0,
) -> Topology:
    """``num_sites`` edge clouds evenly spaced on a circle, ring adjacency."""
    if num_sites < 3:
        raise ValueError("a ring needs at least 3 sites")
    lat0, lon0 = center
    dlat = radius_km / 111.32
    dlon = radius_km / (111.32 * np.cos(np.radians(lat0)))
    names: list[str] = []
    points: list[GeoPoint] = []
    graph = nx.Graph()
    for k in range(num_sites):
        angle = 2.0 * np.pi * k / num_sites
        names.append(f"ring-{k}")
        points.append(GeoPoint(lat0 + dlat * np.sin(angle), lon0 + dlon * np.cos(angle)))
        graph.add_node(k)
    for k in range(num_sites):
        graph.add_edge(k, (k + 1) % num_sites)
    return Topology(names=names, points=points, graph=graph)


def random_geometric_topology(
    num_sites: int,
    *,
    seed: int,
    bbox: tuple[float, float, float, float] = (41.86, 41.92, 12.40, 12.52),
    connect_radius_km: float = 2.5,
) -> Topology:
    """Edge clouds scattered uniformly in a bounding box.

    Sites within ``connect_radius_km`` of each other are adjacent; if the
    resulting graph is disconnected, a minimal chain of nearest-neighbour
    edges is added so random walks can reach every site.
    """
    if num_sites < 1:
        raise ValueError("need at least one site")
    rng = np.random.default_rng(seed)
    lat_min, lat_max, lon_min, lon_max = bbox
    lats = rng.uniform(lat_min, lat_max, size=num_sites)
    lons = rng.uniform(lon_min, lon_max, size=num_sites)
    names = [f"site-{k}" for k in range(num_sites)]
    points = [GeoPoint(float(a), float(o)) for a, o in zip(lats, lons)]
    graph = nx.Graph()
    graph.add_nodes_from(range(num_sites))
    for a in range(num_sites):
        for b in range(a + 1, num_sites):
            if points[a].distance_km(points[b]) <= connect_radius_km:
                graph.add_edge(a, b)
    _connect_components(graph, points)
    return Topology(names=names, points=points, graph=graph)


def _connect_components(graph: nx.Graph, points: list[GeoPoint]) -> None:
    """Stitch disconnected components together via closest cross-pairs."""
    components = [sorted(c) for c in nx.connected_components(graph)]
    while len(components) > 1:
        base = components[0]
        best: tuple[float, int, int] | None = None
        for other in components[1:]:
            for a in base:
                for b in other:
                    d = points[a].distance_km(points[b])
                    if best is None or d < best[0]:
                        best = (d, a, b)
        assert best is not None
        graph.add_edge(best[1], best[2])
        components = [sorted(c) for c in nx.connected_components(graph)]
