"""The Rome metro topology used in the paper's evaluation.

The paper (Section V-A) deploys 15 edge clouds at 15 selected metro stations
in the center of Rome; station GPS locations were collected manually from
Google Maps. We reproduce the same setting with the 15 central stations of
Metro Line A and Line B below, with their (approximate) real coordinates and
the real line adjacency, which the random-walk mobility model of Section V-D
walks over.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from .geo import GeoPoint, pairwise_distance_km

#: Station name -> (lat, lon). Fifteen central stations of Rome Metro A/B.
ROME_METRO_STATIONS: dict[str, tuple[float, float]] = {
    "Battistini": (41.9052, 12.4100),
    "Cornelia": (41.9007, 12.4179),
    "Cipro": (41.9074, 12.4476),
    "Ottaviano": (41.9053, 12.4586),
    "Lepanto": (41.9093, 12.4633),
    "Flaminio": (41.9109, 12.4760),
    "Spagna": (41.9073, 12.4833),
    "Barberini": (41.9038, 12.4888),
    "Repubblica": (41.9028, 12.4964),
    "Termini": (41.9010, 12.5011),
    "Vittorio Emanuele": (41.8945, 12.5065),
    "San Giovanni": (41.8860, 12.5091),
    "Colosseo": (41.8902, 12.4931),
    "Circo Massimo": (41.8835, 12.4885),
    "Piramide": (41.8765, 12.4815),
}

#: Consecutive-station segments of Line A (Battistini -> San Giovanni).
ROME_METRO_LINE_A: tuple[str, ...] = (
    "Battistini",
    "Cornelia",
    "Cipro",
    "Ottaviano",
    "Lepanto",
    "Flaminio",
    "Spagna",
    "Barberini",
    "Repubblica",
    "Termini",
    "Vittorio Emanuele",
    "San Giovanni",
)

#: Consecutive-station segments of Line B (Termini -> Piramide); the two
#: lines interchange at Termini.
ROME_METRO_LINE_B: tuple[str, ...] = (
    "Termini",
    "Colosseo",
    "Circo Massimo",
    "Piramide",
)


@dataclass
class Topology:
    """An edge-cloud deployment: named sites with GPS locations and adjacency.

    Attributes:
        names: site names, index-aligned with every matrix in the project.
        points: GPS location of each site.
        graph: undirected adjacency between sites (used by random-walk
            mobility); nodes are integer site indices.
    """

    names: list[str]
    points: list[GeoPoint]
    graph: nx.Graph = field(repr=False)

    def __post_init__(self) -> None:
        if len(self.names) != len(self.points):
            raise ValueError("names and points must be index-aligned")
        if len(set(self.names)) != len(self.names):
            raise ValueError("site names must be unique")
        if set(self.graph.nodes) != set(range(len(self.names))):
            raise ValueError("graph nodes must be exactly 0..len(names)-1")

    @property
    def num_sites(self) -> int:
        return len(self.names)

    def index_of(self, name: str) -> int:
        """Index of a site by name. Raises KeyError for unknown names."""
        try:
            return self.names.index(name)
        except ValueError:
            raise KeyError(name) from None

    def distance_matrix_km(self) -> np.ndarray:
        """Pairwise great-circle distances between sites (km, zero diagonal)."""
        return pairwise_distance_km(self.points)

    def neighbors(self, site: int) -> list[int]:
        """Adjacent site indices (sorted, for determinism)."""
        return sorted(self.graph.neighbors(site))

    def bounding_box(self) -> tuple[float, float, float, float]:
        """(lat_min, lat_max, lon_min, lon_max) covering every site."""
        lats = [p.lat for p in self.points]
        lons = [p.lon for p in self.points]
        return min(lats), max(lats), min(lons), max(lons)

    def nearest_site(self, point: GeoPoint) -> int:
        """Index of the site geographically closest to ``point``."""
        dists = [point.distance_km(p) for p in self.points]
        return int(np.argmin(dists))


def rome_metro_topology() -> Topology:
    """The paper's 15-station Rome metro deployment (Section V-A)."""
    names = list(ROME_METRO_STATIONS)
    points = [GeoPoint(*ROME_METRO_STATIONS[name]) for name in names]
    graph = nx.Graph()
    graph.add_nodes_from(range(len(names)))
    index = {name: i for i, name in enumerate(names)}
    for line in (ROME_METRO_LINE_A, ROME_METRO_LINE_B):
        for a, b in zip(line, line[1:]):
            graph.add_edge(index[a], index[b])
    return Topology(names=names, points=points, graph=graph)
