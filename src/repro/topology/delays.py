"""Delay matrices derived from topologies.

Section V-A: "The delay in our model is measured by the geographical
distance between any two entities based on their GPS locations. ... The
service quality price is set to be proportional to the measured delay."

We therefore expose a single knob, ``price_per_km``, that converts
kilometers into service-quality cost units.
"""

from __future__ import annotations

import numpy as np

from .metro import Topology


def inter_cloud_delay_matrix(topology: Topology, *, price_per_km: float = 1.0) -> np.ndarray:
    """Inter-cloud delay d(i, i') as priced geographic distance.

    Returns a symmetric (I, I) matrix with an exactly-zero diagonal,
    matching the paper's convention d(i, i) = 0.
    """
    if price_per_km < 0:
        raise ValueError("price_per_km must be nonnegative")
    return topology.distance_matrix_km() * price_per_km


def validate_delay_matrix(delay: np.ndarray) -> None:
    """Raise ValueError unless ``delay`` is a valid inter-cloud delay matrix.

    Valid means: square, nonnegative, zero diagonal, symmetric. (The paper's
    model does not require the triangle inequality, so we do not enforce it.)
    """
    delay = np.asarray(delay)
    if delay.ndim != 2 or delay.shape[0] != delay.shape[1]:
        raise ValueError(f"delay matrix must be square, got shape {delay.shape}")
    if not np.all(np.isfinite(delay)):
        raise ValueError("delay matrix has non-finite entries")
    if np.any(delay < 0):
        raise ValueError("delay matrix has negative entries")
    if np.any(np.abs(np.diag(delay)) > 1e-12):
        raise ValueError("delay matrix diagonal must be zero (d(i,i)=0)")
    if not np.allclose(delay, delay.T, atol=1e-9):
        raise ValueError("delay matrix must be symmetric")
