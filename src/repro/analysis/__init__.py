"""Post-run analysis: ratio statistics, cost timelines, dual prices,
and telemetry-manifest consistency checks."""

from .manifests import (
    RunCostCheck,
    assert_manifest_costs,
    load_manifest,
    verify_manifest_costs,
)
from .prices import DualPriceSeries, extract_dual_prices
from .ratios import (
    RatioEstimate,
    paired_improvement,
    ratio_confidence_interval,
    ratio_samples,
    win_rate,
)
from .timelines import churn_timeline, cost_shares, cumulative_cost, regret_curve

__all__ = [
    "DualPriceSeries",
    "RatioEstimate",
    "RunCostCheck",
    "assert_manifest_costs",
    "churn_timeline",
    "cost_shares",
    "cumulative_cost",
    "extract_dual_prices",
    "load_manifest",
    "paired_improvement",
    "ratio_confidence_interval",
    "ratio_samples",
    "regret_curve",
    "verify_manifest_costs",
    "win_rate",
]
