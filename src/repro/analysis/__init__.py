"""Post-run analysis: ratio statistics, cost timelines, dual prices."""

from .prices import DualPriceSeries, extract_dual_prices
from .ratios import (
    RatioEstimate,
    paired_improvement,
    ratio_confidence_interval,
    ratio_samples,
    win_rate,
)
from .timelines import churn_timeline, cost_shares, cumulative_cost, regret_curve

__all__ = [
    "DualPriceSeries",
    "RatioEstimate",
    "churn_timeline",
    "cost_shares",
    "cumulative_cost",
    "extract_dual_prices",
    "paired_improvement",
    "ratio_confidence_interval",
    "ratio_samples",
    "regret_curve",
    "win_rate",
]
