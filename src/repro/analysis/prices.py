"""Dual prices from the online algorithm's subproblem solves.

The structured interior-point backend returns barrier dual estimates for
every P2 solve: ``theta_j`` (the marginal cost of user j's demand — what a
market-based operator would charge the user) and ``rho_i`` (the congestion
rent of cloud i's capacity — positive exactly when the cloud is full).
This module turns an :class:`OnlineRegularizedAllocator`'s solve history
into per-slot price time series, giving the economic view of a run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.regularization import OnlineRegularizedAllocator


@dataclass(frozen=True)
class DualPriceSeries:
    """Per-slot dual prices of one online run.

    Attributes:
        user_prices: (T, J) demand multipliers theta (marginal serving cost).
        congestion_rents: (T, I) capacity multipliers rho.
    """

    user_prices: np.ndarray
    congestion_rents: np.ndarray

    @property
    def num_slots(self) -> int:
        return int(self.user_prices.shape[0])

    def congested_clouds(self, threshold: float = 1e-4) -> np.ndarray:
        """Boolean (T, I) mask of slots where a cloud's capacity binds."""
        return self.congestion_rents > threshold

    def mean_user_price(self) -> np.ndarray:
        """Average marginal serving cost per user over the horizon, (J,)."""
        return self.user_prices.mean(axis=0)

    def peak_congestion(self) -> tuple[int, int, float]:
        """(slot, cloud, rent) of the largest congestion rent observed."""
        idx = np.unravel_index(
            np.argmax(self.congestion_rents), self.congestion_rents.shape
        )
        return int(idx[0]), int(idx[1]), float(self.congestion_rents[idx])


def extract_dual_prices(algorithm: OnlineRegularizedAllocator) -> DualPriceSeries:
    """Collect the dual price series from an allocator's last run.

    Requires the run to have used a backend that reports duals (the
    structured IPM does; the SciPy fallback reports a combined multiplier
    vector which is split positionally).

    Raises:
        ValueError: if the allocator has not run yet or a solve carries no
            usable duals.
    """
    if not algorithm.last_solves:
        raise ValueError("allocator has no recorded solves; call run() first")
    user_prices: list[np.ndarray] = []
    rents: list[np.ndarray] = []
    for k, result in enumerate(algorithm.last_solves):
        duals = result.duals
        if "demand" in duals and "capacity" in duals:
            theta = np.asarray(duals["demand"], dtype=float)
            rho = np.asarray(duals["capacity"], dtype=float)
        elif "linear" in duals:
            # SciPy packs [demand rows, capacity rows]; capacity rows were
            # written as -X >= -C, so their multipliers appear negated.
            packed = np.asarray(duals["linear"], dtype=float)
            raise_if = packed.size
            num_users = user_prices[0].size if user_prices else None
            if num_users is None or raise_if < num_users:
                raise ValueError(
                    f"slot {k}: cannot split SciPy duals without a prior "
                    "IPM-solved slot establishing the shapes"
                )
            theta = np.abs(packed[:num_users])
            rho = np.abs(packed[num_users:])
        else:
            raise ValueError(f"slot {k}: solver reported no duals")
        user_prices.append(theta)
        rents.append(rho)
    return DualPriceSeries(
        user_prices=np.stack(user_prices), congestion_rents=np.stack(rents)
    )
