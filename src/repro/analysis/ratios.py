"""Statistical analysis of empirical competitive ratios.

The paper reports means and standard deviations over five repetitions;
these helpers add confidence intervals and paired comparisons so statements
like "online-approx beats online-greedy" can be made with error bars.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats

from ..simulation.results import Comparison


@dataclass(frozen=True)
class RatioEstimate:
    """Mean empirical ratio with a Student-t confidence interval."""

    algorithm: str
    mean: float
    std: float
    lower: float
    upper: float
    confidence: float
    num_samples: int


def ratio_samples(comparisons: list[Comparison], algorithm: str) -> np.ndarray:
    """Per-repetition ratio samples of one algorithm."""
    return np.array([c.ratio(algorithm) for c in comparisons])


def ratio_confidence_interval(
    comparisons: list[Comparison], algorithm: str, *, confidence: float = 0.95
) -> RatioEstimate:
    """Mean ratio with a two-sided t confidence interval.

    With a single repetition the interval degenerates to the point estimate.
    """
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    samples = ratio_samples(comparisons, algorithm)
    if samples.size == 0:
        raise ValueError("need at least one comparison")
    mean = float(samples.mean())
    std = float(samples.std(ddof=1)) if samples.size > 1 else 0.0
    if samples.size > 1 and std > 0:
        half_width = float(
            scipy_stats.t.ppf(0.5 + confidence / 2.0, df=samples.size - 1)
            * std
            / np.sqrt(samples.size)
        )
    else:
        half_width = 0.0
    return RatioEstimate(
        algorithm=algorithm,
        mean=mean,
        std=std,
        lower=mean - half_width,
        upper=mean + half_width,
        confidence=confidence,
        num_samples=int(samples.size),
    )


def paired_improvement(
    comparisons: list[Comparison], algorithm: str, reference: str
) -> tuple[float, float]:
    """Mean and std of the per-repetition relative improvement.

    Improvement of ``algorithm`` over ``reference`` on each repetition:
    (cost_ref - cost_alg) / cost_ref. Pairing by repetition removes the
    instance-to-instance variance that independent means would smear.
    """
    values = np.array(
        [c.improvement_over(algorithm, reference) for c in comparisons]
    )
    if values.size == 0:
        raise ValueError("need at least one comparison")
    std = float(values.std(ddof=1)) if values.size > 1 else 0.0
    return float(values.mean()), std


def win_rate(
    comparisons: list[Comparison], algorithm: str, reference: str
) -> float:
    """Fraction of repetitions where ``algorithm`` is strictly cheaper."""
    if not comparisons:
        raise ValueError("need at least one comparison")
    wins = sum(
        1
        for c in comparisons
        if c.results[algorithm].total_cost < c.results[reference].total_cost
    )
    return wins / len(comparisons)
