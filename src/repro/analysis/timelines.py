"""Per-slot cost timelines and regret curves.

Aggregated ratios hide *when* an online algorithm loses ground. These
helpers expose the trajectory view: cumulative cost curves, the regret
curve against offline-opt, and the share each cost family contributes —
the data behind the kind of time-series plots an evaluation section shows.
"""

from __future__ import annotations

import numpy as np

from ..core.costs import CostBreakdown
from ..simulation.results import RunResult


def cumulative_cost(breakdown: CostBreakdown) -> np.ndarray:
    """Cumulative weighted total cost after each slot, shape (T,)."""
    return np.cumsum(breakdown.total_per_slot)


def regret_curve(run: RunResult, baseline: RunResult) -> np.ndarray:
    """Cumulative cost excess of ``run`` over ``baseline`` per slot.

    With ``baseline`` = offline-opt this is the (non-normalized) regret;
    its final value divided by the baseline total is the empirical ratio
    minus one.
    """
    if run.breakdown.num_slots != baseline.breakdown.num_slots:
        raise ValueError("runs cover different horizons")
    return cumulative_cost(run.breakdown) - cumulative_cost(baseline.breakdown)


def cost_shares(breakdown: CostBreakdown) -> dict[str, float]:
    """Fraction of the weighted total contributed by each cost family."""
    weights = breakdown.weights
    components = {
        "operation": weights.static * float(breakdown.operation.sum()),
        "service_quality": weights.static * float(breakdown.service_quality.sum()),
        "reconfiguration": weights.dynamic * float(breakdown.reconfiguration.sum()),
        "migration": weights.dynamic * float(breakdown.migration.sum()),
    }
    total = sum(components.values())
    if total <= 0:
        return {name: 0.0 for name in components}
    return {name: value / total for name, value in components.items()}


def churn_timeline(run: RunResult) -> np.ndarray:
    """Total allocation movement per slot: sum_ij |x_t - x_{t-1}|, shape (T,).

    The physical quantity behind the dynamic costs — useful for spotting
    oscillating algorithms independent of their prices.
    """
    x, prev = run.schedule.with_previous()
    return np.abs(x - prev).sum(axis=(1, 2))
