"""Read telemetry run manifests back and check their cost accounting.

A manifest (``repro.telemetry.manifest``) records one ``slot`` event per
accounted slot and one ``run_end`` event per algorithm run. Because both
come from the same :class:`repro.simulation.accounting.CostAccumulator`,
the per-slot costs of a run must sum to its final breakdown — this module
makes that invariant checkable after the fact, which doubles as a
truncation/corruption test for archived manifests.

Runs are keyed by the ``(cell, run)`` context tags the engine and the
sweep cells attach: ``run`` ids are unique within one registry, and every
parallel sweep cell records into its own registry, so the pair is unique
across a whole merged sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from ..telemetry.manifest import RunRecord, read_manifest


def load_manifest(path: str | Path, *, strict: bool = True) -> RunRecord:
    """Load a JSON-lines run manifest (thin alias of ``read_manifest``).

    ``strict=False`` tolerates live (still-growing) or torn manifests:
    every complete record is returned and the record is flagged
    ``truncated=True`` — note :func:`verify_manifest_costs` will then
    reject runs whose ``run_end`` has not been written yet.
    """
    return read_manifest(path, strict=strict)


def _run_key(event: dict) -> tuple:
    """The identity of the run an event belongs to."""
    cell = event.get("cell")
    if isinstance(cell, list):  # JSON round-trips tuples as lists
        cell = tuple(cell)
    return (cell, event.get("run"))


@dataclass(frozen=True)
class RunCostCheck:
    """Per-slot costs of one run, against its reported final breakdown.

    Attributes:
        key: the run's ``(cell, run)`` identity.
        algorithm: the algorithm name tagged on the run.
        slots: number of slot events found for the run.
        summed: per-slot costs summed — keys ``operation``,
            ``service_quality``, ``reconfiguration``, ``migration``,
            ``total`` (the weighted P0 objective).
        reported: the ``run_end`` event's ``totals`` (same keys).
    """

    key: tuple
    algorithm: str
    slots: int
    summed: dict[str, float]
    reported: dict[str, float]

    @property
    def deviation(self) -> float:
        """Largest |summed - reported| across the five cost entries."""
        return max(
            abs(self.summed[name] - self.reported[name]) for name in self.summed
        )

    def ok(self, tol: float = 1e-9) -> bool:
        """Whether the sums match the report to ``tol`` (relative to scale)."""
        scale = max(1.0, abs(self.reported.get("total", 0.0)))
        return self.deviation <= tol * scale


def verify_manifest_costs(record: RunRecord) -> list[RunCostCheck]:
    """Cross-check every run's slot events against its ``run_end`` totals.

    Returns one :class:`RunCostCheck` per ``run_end`` event in file order.
    Raises ``ValueError`` when a run has no slot events at all or a slot
    event points at a run without a ``run_end`` (a truncated manifest).
    """
    sums: dict[tuple, dict[str, float]] = {}
    counts: dict[tuple, int] = {}
    for event in record.slot_events:
        key = _run_key(event)
        entry = sums.setdefault(
            key,
            {
                "operation": 0.0,
                "service_quality": 0.0,
                "reconfiguration": 0.0,
                "migration": 0.0,
                "total": 0.0,
            },
        )
        entry["operation"] += float(event["op"])
        entry["service_quality"] += float(event["sq"])
        entry["reconfiguration"] += float(event["rc"])
        entry["migration"] += float(event["mg"])
        entry["total"] += float(event["total"])
        counts[key] = counts.get(key, 0) + 1

    checks: list[RunCostCheck] = []
    seen: set[tuple] = set()
    for event in record.run_ends:
        key = _run_key(event)
        seen.add(key)
        if key not in sums:
            raise ValueError(f"run {key} has a run_end but no slot events")
        reported = {name: float(value) for name, value in event["totals"].items()}
        checks.append(
            RunCostCheck(
                key=key,
                algorithm=str(event.get("algorithm", "?")),
                slots=counts[key],
                summed=sums[key],
                reported=reported,
            )
        )
    orphans = set(sums) - seen
    if orphans:
        raise ValueError(
            f"{len(orphans)} run(s) have slot events but no run_end record "
            f"(truncated manifest?): {sorted(orphans)[:5]}"
        )
    return checks


def assert_manifest_costs(record: RunRecord, *, tol: float = 1e-9) -> None:
    """Raise ``AssertionError`` unless every run's costs are consistent."""
    bad = [check for check in verify_manifest_costs(record) if not check.ok(tol)]
    if bad:
        worst = max(bad, key=lambda check: check.deviation)
        raise AssertionError(
            f"{len(bad)} run(s) exceed tol={tol}: worst is {worst.algorithm} "
            f"{worst.key} with deviation {worst.deviation:.3e}"
        )
