"""Command-line entry point: regenerate any of the paper's figures.

Examples::

    repro-edge fig1
    repro-edge fig2 --users 24 --slots 24 --repetitions 3
    repro-edge fig4 --users 12 --slots 10
    repro-edge fig5 --user-counts 10 20 40 --stay-bias 3.0
    repro-edge quickstart
    repro-edge fig2 --telemetry run.jsonl --metrics-summary
    repro-edge threshold            # adversarial oscillating-price sweep
    repro-edge lookahead            # perfect-prediction ablation
    repro-edge certify              # eq. 12 chain + per-slot certificates
    repro-edge bench --suite smoke --compare BENCH_smoke.json
    repro-edge doctor run.jsonl     # post-mortem of a recorded run
    repro-edge fig2 --telemetry run.jsonl --stream --watchdog
    repro-edge watch run.jsonl --strict   # live dashboard (second terminal)
    repro-edge export run.jsonl --trace trace.json --openmetrics run.prom
    repro-edge serve --deadline-ms 250 --metrics-port 9464
    repro-edge loadgen --speed 4 --deadline-ms 250  # replay + latency report

Every command prints a paper-style ASCII table to stdout; see
EXPERIMENTS.md for how the output maps onto the paper's figures and
docs/DIAGNOSTICS.md for the bench/doctor workflow.
"""

from __future__ import annotations

import argparse
import sys

from .experiments import (
    ExperimentScale,
    fig2_report,
    fig3_report,
    fig4_report,
    fig5_report,
    format_table,
    run_eps_sweep,
    run_fig1,
    run_fig2,
    run_fig3,
    run_fig5,
    run_mu_sweep,
    run_threshold_sweep,
    theoretical_bounds,
)


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--users", type=int, default=None, help="number of users J")
    parser.add_argument("--slots", type=int, default=None, help="number of time slots T")
    parser.add_argument(
        "--repetitions", type=int, default=None, help="seeded repetitions per point"
    )
    parser.add_argument("--seed", type=int, default=None, help="base random seed")
    parser.add_argument("--eps", type=float, default=None, help="eps1 = eps2 value")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="processes for the sweep grid (default 1 = serial, 0 = all CPUs; "
        "results are identical at any worker count)",
    )
    parser.add_argument(
        "--aggregate",
        action="store_true",
        help="solve online-approx over (station, workload-bucket) cohorts "
        "instead of per-user columns and split the solution back "
        "(docs/SCALING.md); baselines are unaffected",
    )
    parser.add_argument(
        "--lambda-buckets",
        type=int,
        default=None,
        metavar="B",
        help="workload buckets per station for --aggregate (default 8; "
        "0 = bucket by exact workload value, zero aggregation error)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="K",
        help="split each aggregated solve into K cohort blocks "
        "(default 1 = one joint solve)",
    )
    parser.add_argument(
        "--batch-solves",
        action="store_true",
        help="stack concurrent cells' per-slot P2 solves into lockstep "
        "batched barrier iterations (docs/PERFORMANCE.md); results are "
        "bit-identical to the sequential solves",
    )
    parser.add_argument(
        "--shm",
        action="store_true",
        help="ship work to pool workers through a shared-memory arena "
        "instead of pickling (zero-copy dispatch; needs --workers > 1); "
        "results are bit-identical",
    )
    parser.add_argument(
        "--paper-scale",
        action="store_true",
        help="run at the paper's full scale (300 users, 60 slots, 5 repetitions)",
    )
    parser.add_argument(
        "--drop-schedules",
        action="store_true",
        help="free each slot's allocation right after cost accounting "
        "(ratios are unchanged; bounds memory on long horizons)",
    )
    parser.add_argument(
        "--telemetry",
        metavar="PATH",
        default=None,
        help="record metrics, spans, and per-slot cost events and write them "
        "as a JSON-lines run manifest to PATH (docs/OBSERVABILITY.md); "
        "results are bit-identical with or without",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="write the --telemetry manifest incrementally (live-tailable "
        "with 'repro-edge watch'; memory-bounded: events go to disk, not "
        "RAM); final costs are bit-identical to the buffered writer",
    )
    parser.add_argument(
        "--ring-events",
        type=int,
        default=None,
        metavar="N",
        help="keep at most N telemetry events in memory (oldest evicted, "
        "evictions counted in telemetry.events.dropped); bounds memory on "
        "long horizons like --drop-schedules does for schedules",
    )
    parser.add_argument(
        "--watchdog",
        action="store_true",
        help="evaluate the default watchdog rules (solver stall, fallback "
        "storm, certificate gap, ratio over bound) live over the telemetry "
        "stream; alerts land in the manifest as 'alert' events",
    )
    parser.add_argument(
        "--metrics-summary",
        action="store_true",
        help="print a metrics summary table (solver iterations, fallbacks, "
        "per-slot wall time, cost totals) after the report",
    )
    parser.add_argument(
        "--trace-context",
        action="store_true",
        help="run under a distributed-trace root: every span the run "
        "records — across worker processes and batched solver lanes — "
        "carries trace/span ids, so 'repro-edge export --trace' renders "
        "one connected tree (docs/OBSERVABILITY.md); implies telemetry, "
        "results are bit-identical",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="profile the run: deterministic per-phase solver timers plus "
        "a sampling profiler, folded-stack profiles land in the manifest "
        "as prof.* events ('repro-edge export --speedscope' renders "
        "them); implies telemetry, results are bit-identical",
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        default=None,
        metavar="HZ",
        help="sampling-profiler frequency for --profile (default: 19)",
    )
    parser.add_argument(
        "--flight",
        type=int,
        default=None,
        metavar="K",
        help="arm the incident flight recorder over the last K slots: a "
        "watchdog or SLO alert dumps the full solve input state as a "
        "deterministically replayable incident bundle ('repro-edge "
        "incident replay BUNDLE'); implies --watchdog, observes only — "
        "results are bit-identical (docs/OBSERVABILITY.md)",
    )
    parser.add_argument(
        "--incident-dir",
        default=None,
        metavar="DIR",
        help="directory --flight incident bundles are written into "
        "(default: keep the ring in memory only)",
    )
    parser.add_argument(
        "--slo",
        action="store_true",
        help="evaluate the default SLO objectives (latency p99, deadline-"
        "miss ratio, fallback rate, ratio-vs-bound) with fast/slow "
        "burn-rate windows; transitions land in the manifest as "
        "'slo.burn' events and firing objectives raise slo:<name> alerts",
    )


def _scale_from_args(args: argparse.Namespace) -> ExperimentScale:
    scale = ExperimentScale.paper() if args.paper_scale else ExperimentScale()
    overrides = {}
    if args.users is not None:
        overrides["num_users"] = args.users
    if args.slots is not None:
        overrides["num_slots"] = args.slots
    if args.repetitions is not None:
        overrides["repetitions"] = args.repetitions
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.eps is not None:
        overrides["eps"] = args.eps
    if args.workers is not None:
        # 0 = all CPUs, which ExperimentScale spells as None.
        overrides["workers"] = args.workers if args.workers > 0 else None
    if args.drop_schedules:
        overrides["keep_schedules"] = False
    if getattr(args, "aggregate", False):
        overrides["aggregate"] = True
    if getattr(args, "lambda_buckets", None) is not None:
        # 0 = exact-value buckets, which AggregationConfig spells as None.
        overrides["lambda_buckets"] = (
            args.lambda_buckets if args.lambda_buckets > 0 else None
        )
        overrides["aggregate"] = True
    if getattr(args, "shards", None) is not None:
        overrides["shards"] = args.shards
        overrides["aggregate"] = True
    if getattr(args, "batch_solves", False):
        overrides["batch_solves"] = True
    if getattr(args, "shm", False):
        overrides["use_shm"] = True
    if overrides:
        scale = ExperimentScale(**{**scale.__dict__, **overrides})
    return scale


def _cmd_fig1(_args: argparse.Namespace) -> str:
    lines = ["Figure 1 - greedy vs optimal on the Section II-E examples", ""]
    for name, result in run_fig1().items():
        lines.append(
            f"example ({name}): greedy {'-'.join(result.greedy_placements)} "
            f"cost {result.greedy_cost:.1f} | optimal "
            f"{'-'.join(result.optimal_placements)} cost {result.optimal_cost:.1f}"
        )
    return "\n".join(lines)


def _cmd_fig2(args: argparse.Namespace) -> str:
    return fig2_report(run_fig2(_scale_from_args(args)))


def _cmd_fig3(args: argparse.Namespace) -> str:
    return fig3_report(run_fig3(_scale_from_args(args)))


def _cmd_fig4(args: argparse.Namespace) -> str:
    scale = _scale_from_args(args)
    eps_points = run_eps_sweep(scale)
    mu_points = run_mu_sweep(scale)
    bounds = theoretical_bounds(scale)
    return fig4_report(eps_points, mu_points, bounds)


def _cmd_fig5(args: argparse.Namespace) -> str:
    scale = _scale_from_args(args)
    return fig5_report(
        run_fig5(
            scale,
            user_counts=tuple(args.user_counts),
            stay_bias=args.stay_bias,
        )
    )


def _cmd_threshold(args: argparse.Namespace) -> str:
    scale = _scale_from_args(args)
    sweep = run_threshold_sweep(num_slots=2 * scale.num_slots)
    rows = [
        [f"A={amplitude:g}", ratios["online-greedy"], ratios["online-approx"]]
        for amplitude, ratios in sweep.items()
    ]
    return "\n".join(
        [
            "Adversarial oscillating prices (move cost b+c = 2; trap: 2 < A < 4)",
            format_table(["amplitude", "online-greedy", "online-approx"], rows),
        ]
    )


def _cmd_lookahead(args: argparse.Namespace) -> str:
    # Deferred import: pulls in the LP machinery.
    from .baselines import OfflineOptimal, RecedingHorizon
    from .core.costs import total_cost
    from .core.regularization import OnlineRegularizedAllocator
    from .simulation.scenario import Scenario

    scale = _scale_from_args(args)
    instance = Scenario(
        num_users=scale.num_users, num_slots=scale.num_slots
    ).build(seed=scale.seed)
    offline = total_cost(OfflineOptimal().run(instance), instance)
    rows = []
    for window in sorted({1, 2, 3, scale.num_slots}):
        cost = total_cost(RecedingHorizon(window=window).run(instance), instance)
        rows.append([f"lookahead-{window}", cost / offline])
    approx = total_cost(OnlineRegularizedAllocator().run(instance), instance)
    rows.append(["online-approx (no prediction)", approx / offline])
    return "\n".join(
        [
            "Perfect-prediction ablation (ratio vs offline-opt)",
            format_table(["algorithm", "ratio"], rows),
        ]
    )


def _cmd_certify(args: argparse.Namespace) -> str:
    # Deferred import: pulls in the LP machinery.
    from .core.duality import duality_certificate
    from .core.regularization import OnlineRegularizedAllocator
    from .diagnostics import (
        competitive_ratio_trace,
        record_ratio_trace,
        worst_certificate,
    )
    from .simulation.scenario import Scenario

    scale = _scale_from_args(args)
    instance = Scenario(
        num_users=scale.num_users, num_slots=scale.num_slots
    ).build(seed=scale.seed)
    algorithm = OnlineRegularizedAllocator(
        eps1=scale.eps, eps2=scale.eps, certify=True
    )
    schedule = algorithm.run(instance)
    certificate = duality_certificate(instance, schedule)
    lines = [
        "Duality certificate (paper eq. 12: P1 >= P3 >= D)",
        f"  P1(online-approx) : {certificate.p1:12.3f}",
        f"  P3* (relaxed LP)  : {certificate.p3:12.3f}",
        f"  D*  (dual LP)     : {certificate.dual:12.3f}",
        f"  chain holds       : {certificate.chain_holds}",
        f"  certified ratio   : {certificate.p1 / certificate.dual:.3f}"
        "  (upper bound on the empirical competitive ratio,"
        " no offline solve needed)",
    ]
    certificates = algorithm.last_certificates
    worst = worst_certificate(certificates)
    if worst is not None:
        lines += [
            "",
            "Per-slot P2 optimality certificates (KKT + duality-gap bound)",
            f"  slots certified   : {len(certificates)}",
            "  worst KKT residual: "
            f"{max(c.kkt_residual for c in certificates):.3e}",
            f"  worst relative gap: {worst.relative_gap:.3e}"
            f"  (slot {worst.slot}, multipliers: {worst.source})",
            f"  all within 1e-6   : {all(c.ok() for c in certificates)}",
        ]
    trace = competitive_ratio_trace(
        instance, schedule, eps1=scale.eps, eps2=scale.eps
    )
    # stream=True feeds per-prefix diag.ratio.point events to any attached
    # sink, so `repro-edge watch` and the RatioBoundRule see the ratio live.
    record_ratio_trace(trace, stream=True)
    lines += [
        "",
        "Empirical competitive ratio vs Theorem 2 (per-prefix)",
        f"  bound 1+gamma|I|  : {trace.bound:12.3f}",
        f"  final ratio       : {trace.final_ratio:12.3f}",
        f"  worst prefix ratio: {trace.worst_ratio:12.3f}",
        f"  violating prefixes: {len(trace.violations()):12d}",
        f"  certified         : {trace.certified}",
    ]
    return "\n".join(lines)


def _cmd_bench(args: argparse.Namespace) -> str:
    # Deferred import: pulls in the whole experiment stack.
    from .bench import compare_records, read_record, run_suite, write_record

    scale = _scale_from_args(args)
    record = run_suite(args.suite, scale)
    out = args.out or f"BENCH_{args.suite}.json"
    write_record(out, record)
    lines = [
        f"Benchmark suite '{args.suite}' "
        f"(users={scale.num_users}, slots={scale.num_slots}, "
        f"repetitions={scale.repetitions}) -> {out}",
    ]
    for name, metric in record.metrics.items():
        lines.append(f"  {name:28s} {metric.value:12.6g} {metric.unit}")
    if args.compare is not None:
        baseline = read_record(args.compare)
        report = compare_records(
            baseline,
            record,
            time_threshold=args.threshold / 100.0,
            gate_time=args.gate_time,
        )
        lines += ["", report.render()]
        if not report.ok:
            # Nonzero exit is the CI gate; the report still goes to stdout.
            print("\n".join(lines))
            raise SystemExit(1)
    return "\n".join(lines)


def _cmd_doctor(args: argparse.Namespace) -> str:
    from .bench import doctor_report

    return doctor_report(args.manifest)


def _cmd_watch(args: argparse.Namespace) -> str:
    from .telemetry import watch

    code = watch(
        args.manifest,
        interval=args.interval,
        follow=not args.once,
        strict=args.strict,
        timeout=args.timeout,
    )
    # watch() renders its own frames; the exit code is the whole result.
    raise SystemExit(code)


def _cmd_export(args: argparse.Namespace) -> str:
    from .telemetry import read_manifest, write_chrome_trace, write_openmetrics

    if args.trace is None and args.openmetrics is None and args.speedscope is None:
        raise SystemExit(
            "export: pass --trace PATH, --openmetrics PATH, and/or "
            "--speedscope PATH"
        )
    record = read_manifest(args.manifest, strict=False)
    lines = [f"Exported from {args.manifest}"]
    if record.truncated:
        lines.append("  (truncated manifest: exporting the recorded prefix)")
    if args.trace is not None:
        out = write_chrome_trace(args.trace, record.spans)
        lines.append(
            f"  chrome trace  -> {out}  (load in chrome://tracing or Perfetto)"
        )
    if args.openmetrics is not None:
        out = write_openmetrics(args.openmetrics, record)
        lines.append(f"  openmetrics   -> {out}  (Prometheus textfile format)")
    if args.speedscope is not None:
        from .telemetry import merge_folded, write_speedscope

        profiles: dict[tuple[str, str], dict] = {}
        for event in record.events_of_type("prof.profile"):
            key = (
                str(event.get("source", "phases")),
                str(event.get("unit", "ms")),
            )
            profiles[key] = merge_folded(
                profiles.get(key, {}), event.get("folded") or {}
            )
        if not profiles:
            lines.append(
                "  speedscope    : no prof.profile events in the manifest "
                "(record the run with --profile)"
            )
        else:
            out = write_speedscope(
                args.speedscope,
                [
                    {"name": source, "unit": unit, "folded": folded}
                    for (source, unit), folded in sorted(profiles.items())
                ],
            )
            lines.append(
                f"  speedscope    -> {out}  (open at https://www.speedscope.app)"
            )
    return "\n".join(lines)


def _cmd_profile(args: argparse.Namespace) -> str:
    from .telemetry import profiling_session, write_collapsed, write_speedscope

    command = list(args.run_cmd)
    if command and command[0] == "--":
        command = command[1:]
    if not command:
        raise SystemExit(
            "profile: pass the repro-edge command to run, e.g. "
            "'repro-edge profile fig2 --slots 4'"
        )
    if command[0] == "profile":
        raise SystemExit("profile: cannot profile itself")
    with profiling_session(hz=args.hz, emit=False) as handle:
        code = main(command)
    lines = [
        f"Profile of: repro-edge {' '.join(command)}",
        f"  sampler: {handle.samples} stack sample(s) at {args.hz:g} hz",
    ]
    ranked = sorted(handle.phase_folded.items(), key=lambda kv: (-kv[1], kv[0]))
    if ranked:
        lines.append("  phase totals:")
        for name, total_ms in ranked[:12]:
            lines.append(f"    {name:36s} {total_ms:12.2f} ms")
    else:
        lines.append("  no instrumented phases ran")
    if args.speedscope is not None:
        profiles = []
        if handle.phase_folded:
            profiles.append(
                {"name": "phases", "unit": "ms", "folded": handle.phase_folded}
            )
        if handle.sampler_folded:
            profiles.append(
                {
                    "name": "sampler",
                    "unit": "samples",
                    "folded": handle.sampler_folded,
                }
            )
        if profiles:
            out = write_speedscope(args.speedscope, profiles)
            lines.append(f"  speedscope -> {out}")
        else:
            lines.append("  speedscope skipped: nothing was recorded")
    if args.collapsed is not None:
        folded = handle.sampler_folded or handle.phase_folded
        out = write_collapsed(args.collapsed, folded)
        lines.append(f"  collapsed  -> {out}  (flamegraph.pl-compatible)")
    if code != 0:
        print("\n".join(lines))
        raise SystemExit(code)
    return "\n".join(lines)


def _service_setup(args: argparse.Namespace):
    """(system, observations, ServiceConfig) for serve/loadgen commands."""
    from .experiments.fig2 import fig2_scenario
    from .experiments.settings import aggregation_config
    from .service import ServiceConfig
    from .simulation.observations import (
        SystemDescription,
        observations_from_instance,
    )

    scale = _scale_from_args(args)
    if getattr(args, "trace", None):
        from .io.traces import load_trace_json
        from .mobility.replay import ReplayMobility
        from .simulation.scenario import Scenario

        trace = load_trace_json(args.trace)
        scenario = Scenario(
            mobility=ReplayMobility(trace),
            num_users=trace.num_users,
            num_slots=trace.num_slots,
            workload_distribution="power",
        )
    else:
        scenario = fig2_scenario(scale)
    instance = scenario.build(seed=scale.seed)
    system = SystemDescription.from_instance(instance)
    observations = observations_from_instance(instance)
    deadline_ms = getattr(args, "deadline_ms", None)
    config = ServiceConfig(
        deadline_s=None if deadline_ms is None else deadline_ms / 1000.0,
        max_iterations=getattr(args, "max_iterations", None),
        eps1=scale.eps,
        eps2=scale.eps,
        backend=args.backend,
        aggregation=aggregation_config(scale),
        flight_slots=getattr(args, "flight", None) or 0,
        incident_dir=getattr(args, "incident_dir", None),
        slo=getattr(args, "slo", False),
    )
    return system, observations, config


def _cmd_serve(args: argparse.Namespace) -> str:
    import contextlib

    from .telemetry import MetricsRegistry, telemetry_enabled, telemetry_session

    # The service counters (and the --metrics-port endpoint) read the
    # active registry; without --telemetry that is the null registry, so
    # install a memory-bounded live one for the lifetime of the server.
    scope = (
        contextlib.nullcontext()
        if telemetry_enabled()
        else telemetry_session(MetricsRegistry(max_events=0))
    )
    with scope:
        return _serve_with_registry(args)


def _serve_with_registry(args: argparse.Namespace) -> str:
    import asyncio

    from .service import AllocationServer, AllocationSession, serve_stdio

    system, _, config = _service_setup(args)
    session = AllocationSession(system, config)
    if args.stdio:
        served = serve_stdio(session)
        return f"served {served} slot(s) over stdio"

    server = AllocationServer(
        session,
        host=args.host,
        port=args.port,
        tick_s=None if args.tick_ms is None else args.tick_ms / 1000.0,
        metrics_port=args.metrics_port,
    )

    async def _serve() -> None:
        await server.start()
        print(
            f"serving {system.num_users} users x {system.num_clouds} clouds "
            f"on {server.host}:{server.port}"
            + (
                f" (metrics on :{server.metrics_endpoint.port}/metrics)"
                if server.metrics_endpoint is not None
                else ""
            ),
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    stats = session.stats()
    return (
        f"served {stats['slots']} slot(s), total cost {stats['total_cost']:.6f}, "
        f"{stats['deadline_misses']} deadline miss(es)"
    )


def _cmd_loadgen(args: argparse.Namespace) -> str:
    import json as json_module

    from .service import run_loadgen

    system, observations, config = _service_setup(args)
    report = run_loadgen(
        system,
        observations,
        config,
        speed=args.speed,
        slot_s=args.slot_ms / 1000.0,
        host=args.host,
        port=args.port,
        batch_reference=not args.no_batch_reference,
    )
    if args.out is not None:
        from pathlib import Path

        Path(args.out).write_text(
            json_module.dumps(report.as_dict(), indent=2) + "\n"
        )
    output = report.render()
    failures = []
    if args.require_zero_misses and report.deadline_misses > 0:
        failures.append(f"{report.deadline_misses} deadline miss(es) (0 required)")
    if args.max_cost_delta is not None and not args.no_batch_reference:
        scale_ref = max(1.0, abs(report.batch_cost))
        if abs(report.cost_delta) > args.max_cost_delta * scale_ref:
            failures.append(
                f"|cost delta| {abs(report.cost_delta):.3e} exceeds "
                f"{args.max_cost_delta:g} x max(1, |batch cost|)"
            )
    if failures:
        print(output)
        raise SystemExit("loadgen gate failed: " + "; ".join(failures))
    return output


def _cmd_incident(args: argparse.Namespace) -> str:
    from .telemetry import read_bundle, replay_bundle

    try:
        bundle = read_bundle(args.bundle, strict=not args.salvage)
    except (OSError, ValueError) as error:
        raise SystemExit(f"incident: {error}") from None
    if args.action == "show":
        environment = bundle.environment or {}
        alert = bundle.alert or {}
        lines = [
            f"Incident bundle {bundle.path}",
            f"  reason     : {bundle.reason or '?'}",
            f"  snapshots  : {len(bundle.snapshots)}",
        ]
        if bundle.snapshots:
            slots = [s.get("slot") for s in bundle.snapshots]
            lines.append(f"  slots      : {slots[0]}..{slots[-1]}")
        if alert:
            lines.append(
                f"  alert      : [{alert.get('rule', '?')}] "
                f"{alert.get('message', '')}"
            )
        if environment:
            lines.append(
                f"  recorded on: python {environment.get('python', '?')}, "
                f"numpy {environment.get('numpy', '?')}, "
                f"blas {environment.get('blas', '?')}"
            )
        controller = bundle.controller or {}
        lines.append(
            f"  controller : {controller.get('kind', '?')} "
            f"(replayable: {controller.get('replayable', False)})"
        )
        if bundle.truncated:
            lines.append("  TRUNCATED  : torn tail dropped (salvaged read)")
        context = bundle.context or {}
        traces = context.get("trace_ids") or []
        if traces:
            lines.append(f"  trace ids  : {', '.join(map(str, traces))}")
        return "\n".join(lines)
    try:
        report = replay_bundle(bundle)
    except ValueError as error:
        raise SystemExit(f"incident: {error}") from None
    if not report.ok:
        print(report.render())
        raise SystemExit(1)
    return report.render()


def _cmd_quickstart(args: argparse.Namespace) -> str:
    # Deferred import: the quickstart pulls in the whole public API.
    from . import (
        OfflineOptimal,
        OnlineGreedy,
        OnlineRegularizedAllocator,
        Scenario,
        compare_algorithms,
    )

    from .experiments import aggregation_config

    scale = _scale_from_args(args)
    scenario = Scenario(num_users=scale.num_users, num_slots=scale.num_slots)
    instance = scenario.build(seed=scale.seed)
    comparison = compare_algorithms(
        [
            OfflineOptimal(),
            OnlineGreedy(),
            OnlineRegularizedAllocator(aggregation=aggregation_config(scale)),
        ],
        instance,
    )
    lines = ["Quickstart comparison (taxi mobility, power workloads)"]
    for name, ratio in comparison.ratios().items():
        lines.append(f"  {name:15s} ratio {ratio:.3f}")
    return "\n".join(lines)


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser with one subcommand per experiment."""
    parser = argparse.ArgumentParser(
        prog="repro-edge",
        description="Reproduce the ICDCS 2017 online edge-cloud allocation paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("fig1", help="the two greedy-pitfall examples").set_defaults(
        func=_cmd_fig1
    )
    for name, func, help_text in (
        ("fig2", _cmd_fig2, "taxi mobility, power workloads"),
        ("fig3", _cmd_fig3, "uniform / normal workloads"),
        ("fig4", _cmd_fig4, "eps and mu sweeps"),
        ("quickstart", _cmd_quickstart, "minimal three-algorithm comparison"),
        ("threshold", _cmd_threshold, "adversarial oscillating-price sweep"),
        ("lookahead", _cmd_lookahead, "perfect-prediction (receding horizon) ablation"),
        ("certify", _cmd_certify, "dual certificate of the competitive-ratio chain"),
    ):
        p = sub.add_parser(name, help=help_text)
        _add_scale_arguments(p)
        p.set_defaults(func=func)

    p5 = sub.add_parser("fig5", help="random-walk mobility, varying user counts")
    _add_scale_arguments(p5)
    p5.add_argument(
        "--user-counts", type=int, nargs="+", default=[10, 20, 40], metavar="N"
    )
    p5.add_argument(
        "--stay-bias",
        type=float,
        default=0.0,
        help="0 = the paper's uniform walk; >0 makes users dwell several slots",
    )
    p5.set_defaults(func=_cmd_fig5)

    bench = sub.add_parser(
        "bench", help="run a named benchmark suite, write BENCH_<suite>.json"
    )
    _add_scale_arguments(bench)
    bench.add_argument(
        "--suite",
        default="smoke",
        help="suite name: smoke, solver, fig2, fig5, parallel, batched, "
        "aggregate, service (default: smoke)",
    )
    bench.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="output record path (default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE",
        help="compare against a baseline record; exit nonzero on regression",
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help="wall-time regression threshold in percent (default: 10)",
    )
    bench.add_argument(
        "--gate-time",
        action="store_true",
        help="also fail the gate on wall-time regressions (default: advisory)",
    )
    bench.set_defaults(func=_cmd_bench)

    def _add_service_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            metavar="MS",
            help="per-slot solve deadline in milliseconds; a slot past it "
            "serves the repaired partial iterate and counts as a deadline "
            "miss (default: no deadline)",
        )
        p.add_argument(
            "--max-iterations",
            type=int,
            default=None,
            metavar="N",
            help="per-slot Newton-iteration cap (deterministic twin of "
            "--deadline-ms; default: uncapped)",
        )
        p.add_argument(
            "--backend",
            default="auto",
            help="solver-registry backend name (default: auto)",
        )
        p.add_argument(
            "--trace",
            default=None,
            metavar="PATH",
            help="replay a mobility trace saved by repro.io.traces "
            "(JSON form) instead of generating the fig2 scenario trace",
        )

    serve = sub.add_parser(
        "serve",
        help="run the live allocation service (JSON-lines over TCP or stdio)",
    )
    _add_scale_arguments(serve)
    _add_service_arguments(serve)
    serve.add_argument("--host", default="127.0.0.1", help="listen address")
    serve.add_argument(
        "--port", type=int, default=7201, help="listen port (0 = pick a free one)"
    )
    serve.add_argument(
        "--tick-ms",
        type=float,
        default=None,
        metavar="MS",
        help="advance slots on a wall-clock tick instead of per update: "
        "buffered updates are downsampled to the freshest one each tick",
    )
    serve.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve live OpenMetrics on GET /metrics at this port",
    )
    serve.add_argument(
        "--stdio",
        action="store_true",
        help="serve JSON lines over stdin/stdout instead of TCP",
    )
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="replay a trace against the service; report latency percentiles "
        "and the realized-vs-batch cost delta",
    )
    _add_scale_arguments(loadgen)
    _add_service_arguments(loadgen)
    loadgen.add_argument(
        "--speed",
        type=float,
        default=1.0,
        metavar="X",
        help="replay speed factor (0 = as fast as possible; default: 1)",
    )
    loadgen.add_argument(
        "--slot-ms",
        type=float,
        default=1000.0,
        metavar="MS",
        help="real-time slot duration at 1x speed (default: 1000)",
    )
    loadgen.add_argument(
        "--host",
        default=None,
        help="target an external server instead of spawning one in-process",
    )
    loadgen.add_argument(
        "--port", type=int, default=None, help="external server port"
    )
    loadgen.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the replay report as JSON to PATH",
    )
    loadgen.add_argument(
        "--no-batch-reference",
        action="store_true",
        help="skip the unbudgeted batch cross-check solve",
    )
    loadgen.add_argument(
        "--require-zero-misses",
        action="store_true",
        help="exit nonzero when any slot missed the deadline (CI gate)",
    )
    loadgen.add_argument(
        "--max-cost-delta",
        type=float,
        default=None,
        metavar="RTOL",
        help="exit nonzero when |streamed - batch| cost exceeds "
        "RTOL x max(1, |batch|) (CI gate)",
    )
    loadgen.set_defaults(func=_cmd_loadgen)

    doctor = sub.add_parser(
        "doctor", help="post-mortem report from a telemetry run manifest"
    )
    doctor.add_argument(
        "manifest",
        help="path to a .jsonl run manifest, or a directory "
        "(its newest .jsonl is diagnosed)",
    )
    doctor.set_defaults(func=_cmd_doctor)

    watch_p = sub.add_parser(
        "watch", help="live dashboard over a streaming run manifest"
    )
    watch_p.add_argument(
        "manifest",
        help="manifest to tail (may still be growing, or not exist yet)",
    )
    watch_p.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="seconds between polls (default: 0.5)",
    )
    watch_p.add_argument(
        "--once",
        action="store_true",
        help="render the current state once and exit instead of following",
    )
    watch_p.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any watchdog alert fired (recorded in the "
        "manifest or re-derived from the event stream)",
    )
    watch_p.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop following after this many seconds (default: follow until "
        "manifest_end)",
    )
    watch_p.set_defaults(func=_cmd_watch)

    incident = sub.add_parser(
        "incident",
        help="inspect or deterministically replay an incident bundle "
        "written by the --flight recorder",
    )
    incident.add_argument(
        "action",
        choices=("replay", "show"),
        help="'replay' rebuilds every captured slot through the solver and "
        "verifies costs/iterations/partial flags reproduce bit-for-bit "
        "(exit 1 with a per-field diff on divergence); 'show' prints the "
        "bundle header",
    )
    incident.add_argument(
        "bundle", help="path to an incident-*.jsonl bundle file"
    )
    incident.add_argument(
        "--salvage",
        action="store_true",
        help="tolerate a torn/truncated bundle: drop the torn tail and "
        "show what survived (replay still refuses truncated bundles)",
    )
    incident.set_defaults(func=_cmd_incident)

    export = sub.add_parser(
        "export", help="convert a run manifest to external tooling formats"
    )
    export.add_argument("manifest", help="path to a .jsonl run manifest")
    export.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a Chrome trace_event JSON of the span trees to PATH",
    )
    export.add_argument(
        "--openmetrics",
        default=None,
        metavar="PATH",
        help="write an OpenMetrics/Prometheus text snapshot of the metrics "
        "to PATH",
    )
    export.add_argument(
        "--speedscope",
        default=None,
        metavar="PATH",
        help="write the manifest's prof.profile folded stacks (recorded "
        "with --profile) as a speedscope JSON document to PATH",
    )
    export.set_defaults(func=_cmd_export)

    profile = sub.add_parser(
        "profile",
        help="run any repro-edge command under the sampling profiler and "
        "phase timers; print the phase ranking and optionally write "
        "speedscope/collapsed profiles",
    )
    profile.add_argument(
        "--hz",
        type=float,
        default=19.0,
        metavar="HZ",
        help="stack-sampling frequency (default: 19)",
    )
    profile.add_argument(
        "--speedscope",
        default=None,
        metavar="PATH",
        help="write phase + sampler profiles as a speedscope JSON document",
    )
    profile.add_argument(
        "--collapsed",
        default=None,
        metavar="PATH",
        help="write the sampled stacks in collapsed (flamegraph.pl) format",
    )
    profile.add_argument(
        "run_cmd",
        nargs=argparse.REMAINDER,
        metavar="COMMAND...",
        help="the repro-edge command line to profile (e.g. fig2 --slots 4)",
    )
    profile.set_defaults(func=_cmd_profile)
    return parser


def _run_command(args: argparse.Namespace) -> str:
    """Run the selected command under --trace-context / --profile scopes.

    Both scopes are strictly additive instrumentation: with neither flag
    this is exactly ``args.func(args)`` — no tracer, no profiler thread,
    no extra telemetry of any kind.
    """
    import contextlib

    want_trace = getattr(args, "trace_context", False)
    want_profile = getattr(args, "profile", False)
    if not (want_trace or want_profile):
        return args.func(args)
    with contextlib.ExitStack() as stack:
        if want_profile:
            from .telemetry import profiling_session

            hz = getattr(args, "profile_hz", None)
            stack.enter_context(
                profiling_session(hz=19.0 if hz is None else hz)
            )
        if want_trace:
            from .telemetry import traced_root

            stack.enter_context(traced_root("run", command=args.command))
        return args.func(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``--telemetry PATH`` runs the command inside a telemetry session and
    writes the session's JSON-lines run manifest to ``PATH`` — buffered
    by default, incrementally with ``--stream`` (tail it live with
    ``repro-edge watch PATH``). ``--ring-events N`` bounds the in-memory
    event buffer, ``--watchdog`` evaluates the default alert rules over
    the stream, and ``--metrics-summary`` appends the metrics table to
    the report. All of it observes only — the reported numbers are
    identical either way.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    manifest_path = getattr(args, "telemetry", None)
    want_summary = getattr(args, "metrics_summary", False)
    stream = getattr(args, "stream", False)
    ring = getattr(args, "ring_events", None)
    want_watchdog = getattr(args, "watchdog", False)
    if stream and manifest_path is None:
        parser.error("--stream requires --telemetry PATH (the file to stream to)")
    # serve/loadgen own their incident plane through ServiceConfig (the
    # session records and evaluates SLOs itself); every other command gets
    # the global recorder + SLO plane on the telemetry sink chain.
    service_command = args.command in ("serve", "loadgen")
    want_slo = getattr(args, "slo", False) and not service_command
    recorder = None
    if not service_command and getattr(args, "flight", None):
        from .telemetry import FlightRecorder

        recorder = FlightRecorder(
            args.flight, incident_dir=getattr(args, "incident_dir", None)
        )
        # A recorder without an alert source never auto-dumps.
        want_watchdog = True
    wants_telemetry = (
        manifest_path is not None
        or want_summary
        or ring is not None
        or want_watchdog
        or want_slo
        or getattr(args, "trace_context", False)
        or getattr(args, "profile", False)
    )
    if not wants_telemetry:
        print(args.func(args))
        return 0

    config = {
        "command": args.command,
        **{
            key: value
            for key, value in vars(args).items()
            if key not in ("func", "command") and not callable(value)
        },
    }
    import contextlib

    from .telemetry import flight_session

    flight_scope = (
        flight_session(recorder) if recorder is not None
        else contextlib.nullcontext()
    )
    if stream:
        from .telemetry import default_rules, streaming_manifest_session

        with streaming_manifest_session(
            manifest_path,
            config=config,
            max_events=ring if ring is not None else 0,
            watchdog_rules=default_rules() if want_watchdog else None,
            slo=True if want_slo else None,
            recorder=recorder,
        ) as registry, flight_scope:
            output = _run_command(args)
    else:
        from .telemetry import (
            MetricsRegistry,
            NullSink,
            default_rules,
            telemetry_session,
            write_manifest,
        )
        from .telemetry.watchdog import WatchdogSink

        sink = None
        watchdog_sink = None
        if want_watchdog or want_slo:
            # Buffered path: alerts go into the event buffer (and thus the
            # manifest) via the registry; the inner sink is a no-op.
            watchdog_sink = WatchdogSink(
                NullSink(),
                rules=default_rules() if want_watchdog else None,
                slo=True if want_slo else None,
            )
            sink = watchdog_sink
        if recorder is not None:
            from .telemetry import FlightRecorderSink

            sink = FlightRecorderSink(
                sink if sink is not None else NullSink(), recorder
            )
        registry = MetricsRegistry(sink=sink, max_events=ring)
        if watchdog_sink is not None:
            watchdog_sink.bind(registry)
        with telemetry_session(registry), flight_scope:
            output = _run_command(args)
        if manifest_path is not None:
            write_manifest(manifest_path, registry, config=config)
    if want_summary:
        output = f"{output}\n\n{registry.summary_table()}"
    print(output)
    return 0


if __name__ == "__main__":
    sys.exit(main())
